//! The per-tuple discrete-event simulator.
//!
//! Where [`crate::flow_sim`] solves for steady-state rates analytically,
//! this module actually plays the system out tuple by tuple on the
//! [`crate::engine::EventQueue`]: spout tasks emit mini-batches, bolts
//! queue and service tuples on their worker's thread pool, emitted tuples
//! are routed per grouping (with network delay for remote hops), every
//! processed tuple is acked through acker tasks, and a batch commits only
//! once all of its tuples and acks have drained — the Trident semantics
//! the paper's topologies ran under.
//!
//! It is the ground truth the fast model is validated against (see the
//! integration tests), and the right tool for studying transient behaviour
//! that a steady-state model cannot express.

use std::collections::VecDeque;

use mtm_obs::{Event, NullRecorder, Recorder};

use crate::cluster::ClusterSpec;
use crate::config::StormConfig;
use crate::engine::EventQueue;
use crate::metrics::{Bottleneck, SimResult};
use crate::placement::{place_even, Placement};
use crate::topology::{Grouping, RoutePolicy, Topology};

/// Options for a tuple-level simulation run.
#[derive(Debug, Clone, Copy)]
pub struct TupleSimOptions {
    /// Measurement window in virtual seconds.
    pub window_s: f64,
    /// Hard cap on processed events (guards against runaway configs).
    pub max_events: u64,
    /// One-way latency added to remote (cross-worker) tuple deliveries.
    pub network_delay_s: f64,
}

impl Default for TupleSimOptions {
    fn default() -> Self {
        TupleSimOptions {
            window_s: 120.0,
            max_events: 50_000_000,
            network_delay_s: 0.000_5,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A tuple (or ack) arrives at a task's queue.
    Deliver { task: usize, batch: u32 },
    /// A task finishes servicing one message.
    Finish { task: usize, batch: u32 },
    /// A batch's commit coordination completes.
    Commit { batch: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskKind {
    Node(usize),
    Acker,
}

struct TaskState {
    kind: TaskKind,
    worker: usize,
    queue: VecDeque<u32>, // batch ids of queued messages
    running: bool,
    /// Per-out-edge fractional emission accumulators (selectivity).
    emit_acc: Vec<f64>,
    /// Round-robin counters: one per out edge for destination choice,
    /// plus one for split-route edge choice.
    rr_dest: Vec<u64>,
    rr_edge: u64,
    processed: u64,
}

struct WorkerState {
    free_slots: u32,
    waiting: VecDeque<usize>,
    slowdown: f64,
    net_bytes: f64,
}

struct BatchState {
    outstanding: u64,
    emitted_all: bool,
}

/// Run the tuple-level simulation of `config` on `topo`.
///
/// Deprecated in favour of [`crate::simulator::TupleSimulator`], which
/// reports invalid inputs as [`crate::simulator::SimError`] instead of
/// silently returning a failed result. Kept for one release; results
/// are bitwise-identical to the trait path.
#[deprecated(
    since = "0.2.0",
    note = "use stormsim::TupleSimulator and the Simulator trait"
)]
pub fn simulate_tuples(
    topo: &Topology,
    config: &StormConfig,
    cluster: &ClusterSpec,
    opts: &TupleSimOptions,
) -> SimResult {
    simulate_tuples_with(topo, config, cluster, opts, &mut NullRecorder)
}

/// [`simulate_tuples`] with instrumentation: per-operator processed
/// counters and queue high-water marks, event-engine statistics, and
/// start/end markers go to `rec`. With [`NullRecorder`] (what
/// `simulate_tuples` passes) the high-water-mark bookkeeping is skipped
/// entirely; the returned result is bitwise identical either way —
/// recording is a passive observer.
pub fn simulate_tuples_with<R: Recorder>(
    topo: &Topology,
    config: &StormConfig,
    cluster: &ClusterSpec,
    opts: &TupleSimOptions,
    rec: &mut R,
) -> SimResult {
    if R::ENABLED {
        rec.record(Event::SimStart {
            sim: "tuple".into(),
            topo: topo.name_label().into(),
            nodes: topo.n_nodes(),
            window_s: opts.window_s,
        });
    }
    if config.validate(topo).is_err() {
        let result = SimResult::failed(opts.window_s, 0, 0);
        if R::ENABLED {
            rec.record(Event::SimEnd {
                throughput: result.throughput_tps,
                bottleneck: result.bottleneck.label(),
                committed: result.committed_batches,
            });
        }
        return result;
    }
    let tasks_per_node = config.normalized_tasks(topo);
    let total_topo_tasks: usize = tasks_per_node.iter().map(|&t| t as usize).sum();
    let ackers = config.effective_ackers(total_topo_tasks.min(cluster.machines));
    let placement = place_even(topo, &tasks_per_node, ackers, cluster);

    let mut sim = Sim::new(topo, config, cluster, &placement, opts, R::ENABLED);
    sim.run_des();
    let result = sim.result();
    if R::ENABLED {
        sim.emit_stats(rec);
        rec.record(Event::SimEnd {
            throughput: result.throughput_tps,
            bottleneck: result.bottleneck.label(),
            committed: result.committed_batches,
        });
    }
    #[cfg(feature = "strict-invariants")]
    crate::invariants::assert_finite(
        "tuple-sim metrics (throughput, net, cpu)",
        &[
            result.throughput_tps,
            result.avg_worker_net_mbps,
            result.cpu_utilization,
        ],
    );
    result
}

struct Sim<'a> {
    topo: &'a Topology,
    config: &'a StormConfig,
    cluster: &'a ClusterSpec,
    placement: &'a Placement,
    opts: &'a TupleSimOptions,
    queue: EventQueue<Ev>,
    tasks: Vec<TaskState>,
    workers: Vec<WorkerState>,
    /// Task ids per node (indices into `tasks`), then acker task ids.
    node_tasks: Vec<Vec<usize>>,
    acker_tasks: Vec<usize>,
    /// Task ids of every spout task, in round-robin emission order —
    /// precomputed so `launch_batch` never rebuilds it per batch.
    spout_tasks: Vec<usize>,
    batches: Vec<BatchState>,
    launched: u32,
    committed: u64,
    next_spout_rr: u64,
    aborted: bool,
    /// When recording: per-task queue high-water marks (empty otherwise,
    /// so the unrecorded hot path skips the bookkeeping entirely).
    queue_hwm: Vec<usize>,
}

impl<'a> Sim<'a> {
    fn new(
        topo: &'a Topology,
        config: &'a StormConfig,
        cluster: &'a ClusterSpec,
        placement: &'a Placement,
        opts: &'a TupleSimOptions,
        track_stats: bool,
    ) -> Self {
        let mut tasks = Vec::with_capacity(placement.tasks.len() + placement.acker_worker.len());
        let mut node_tasks = vec![Vec::new(); topo.n_nodes()];
        for (tid, tref) in placement.tasks.iter().enumerate() {
            node_tasks[tref.node].push(tasks.len());
            let n_out = topo.out_edges(tref.node).len();
            tasks.push(TaskState {
                kind: TaskKind::Node(tref.node),
                worker: placement.task_worker[tid],
                queue: VecDeque::new(),
                running: false,
                emit_acc: vec![0.0; n_out],
                rr_dest: vec![0; n_out],
                rr_edge: 0,
                processed: 0,
            });
        }
        let mut acker_tasks = Vec::new();
        for &w in &placement.acker_worker {
            acker_tasks.push(tasks.len());
            tasks.push(TaskState {
                kind: TaskKind::Acker,
                worker: w,
                queue: VecDeque::new(),
                running: false,
                emit_acc: Vec::new(),
                rr_dest: Vec::new(),
                rr_edge: 0,
                processed: 0,
            });
        }

        let workers = (0..placement.workers)
            .map(|m| {
                let threads = (placement.tasks_per_worker[m] as u32).min(config.worker_threads)
                    + config.receiver_threads
                    + placement.ackers_per_worker[m] as u32;
                let capacity = cluster.machine_capacity(threads);
                let spin = cluster.task_spin_units
                    * (placement.tasks_per_worker[m] + placement.ackers_per_worker[m]) as f64;
                let avail = (capacity - spin).max(1e-9);
                // How much slower a single thread runs than the 1-unit/ms
                // ideal, once capacity is shared across concurrent slots.
                let concurrency = (placement.tasks_per_worker[m] as u32)
                    .min(config.worker_threads)
                    .max(1);
                let per_thread = (avail / concurrency as f64).min(cluster.unit_rate);
                WorkerState {
                    free_slots: config.worker_threads.max(1),
                    waiting: VecDeque::new(),
                    slowdown: cluster.unit_rate / per_thread,
                    net_bytes: 0.0,
                }
            })
            .collect();

        let queue_hwm = if track_stats {
            vec![0; tasks.len()]
        } else {
            Vec::new()
        };
        let spout_tasks: Vec<usize> = topo
            .spouts()
            .iter()
            .flat_map(|&s| node_tasks[s].iter().copied())
            .collect();
        Sim {
            topo,
            config,
            cluster,
            placement,
            opts,
            queue: EventQueue::new(),
            tasks,
            workers,
            node_tasks,
            acker_tasks,
            spout_tasks,
            batches: Vec::new(),
            launched: 0,
            committed: 0,
            next_spout_rr: 0,
            aborted: false,
            queue_hwm,
        }
    }

    fn service_units(&self, task: usize) -> f64 {
        match self.tasks[task].kind {
            TaskKind::Node(node) => {
                let contention = if self.topo.is_contentious(node) {
                    (self.node_tasks[node].len() as f64).powf(self.cluster.contention_exponent)
                } else {
                    1.0
                };
                self.topo.time_complexity(node) * contention + self.cluster.per_tuple_overhead_units
            }
            TaskKind::Acker => self.cluster.acker_cost_units,
        }
    }

    fn launch_batch(&mut self) {
        let batch = self.batches.len() as u32;
        // mtm-allow: alloc -- one entry per batch, amortized over batch_size tuples
        self.batches.push(BatchState {
            outstanding: self.config.batch_size as u64,
            emitted_all: true, // all emit jobs enqueued below, synchronously
        });
        self.launched += 1;
        // Distribute the batch's emit jobs round-robin over the
        // precomputed spout tasks.
        debug_assert!(!self.spout_tasks.is_empty());
        for _ in 0..self.config.batch_size {
            let t = self.spout_tasks[(self.next_spout_rr as usize) % self.spout_tasks.len()];
            self.next_spout_rr += 1;
            self.enqueue(t, batch, 0.0);
        }
    }

    /// Put a message on a task's queue after `delay`, via a Deliver event.
    fn enqueue(&mut self, task: usize, batch: u32, delay: f64) {
        self.queue.schedule_in(delay, Ev::Deliver { task, batch });
    }

    fn deliver(&mut self, task: usize, batch: u32) {
        // mtm-allow: alloc -- task queues reuse capacity after warmup high-water
        self.tasks[task].queue.push_back(batch);
        if !self.queue_hwm.is_empty() {
            let depth = self.tasks[task].queue.len();
            if depth > self.queue_hwm[task] {
                self.queue_hwm[task] = depth;
            }
        }
        self.try_start(task);
    }

    fn try_start(&mut self, task: usize) {
        let t = &self.tasks[task];
        if t.running || t.queue.is_empty() {
            return;
        }
        let w = t.worker;
        if self.workers[w].free_slots == 0 {
            if !self.workers[w].waiting.contains(&task) {
                // mtm-allow: alloc -- waiting list bounded by the worker task count
                self.workers[w].waiting.push_back(task);
            }
            return;
        }
        self.workers[w].free_slots -= 1;
        let batch = *self.tasks[task].queue.front().expect("non-empty queue");
        self.tasks[task].running = true;
        let service = self.service_units(task) / self.cluster.unit_rate * self.workers[w].slowdown;
        self.queue.schedule_in(service, Ev::Finish { task, batch });
    }

    fn finish(&mut self, task: usize, batch: u32) {
        let popped = self.tasks[task].queue.pop_front();
        debug_assert_eq!(popped, Some(batch));
        self.tasks[task].running = false;
        self.tasks[task].processed += 1;
        let worker = self.tasks[task].worker;
        self.workers[worker].free_slots += 1;

        match self.tasks[task].kind {
            TaskKind::Node(node) => {
                self.emit_children(task, node, batch);
                // Every processed tuple sends an ack op to an acker.
                if self.acker_tasks.is_empty() {
                    // No ackers at all: account directly.
                    self.batches[batch as usize].outstanding -= 1;
                    self.maybe_commit(batch);
                } else {
                    let a = self.acker_tasks
                        [(self.tasks[task].processed as usize) % self.acker_tasks.len()];
                    self.enqueue(a, batch, 0.0);
                }
            }
            TaskKind::Acker => {
                self.batches[batch as usize].outstanding -= 1;
                self.maybe_commit(batch);
            }
        }

        // Wake this task again or a waiting neighbour.
        self.try_start(task);
        while self.workers[worker].free_slots > 0 {
            match self.workers[worker].waiting.pop_front() {
                Some(next) => self.try_start(next),
                None => break,
            }
        }
    }

    fn emit_children(&mut self, task: usize, node: usize, batch: u32) {
        // Copy the topology reference out of `self` so iterating its
        // edge list does not hold a borrow of `self` across the
        // `send_on_edge` calls below — this used to `to_vec` the edge
        // list on every processed tuple.
        let topo = self.topo;
        let out = topo.out_edges(node);
        if out.is_empty() {
            return;
        }
        let route = topo.route(node);
        let selectivity = topo.selectivity(node);
        let n_out = out.len();
        // Selectivity: how many child tuples this processing produces.
        for (slot, &ei) in out.iter().enumerate() {
            let share = match route {
                RoutePolicy::Replicate => selectivity,
                RoutePolicy::Split => {
                    // Emit to one edge per output tuple, cycling edges.
                    if (self.tasks[task].rr_edge as usize) % n_out == slot {
                        selectivity
                    } else {
                        0.0
                    }
                }
            };
            self.tasks[task].emit_acc[slot] += share;
            while self.tasks[task].emit_acc[slot] >= 1.0 {
                self.tasks[task].emit_acc[slot] -= 1.0;
                self.send_on_edge(task, ei as usize, slot, batch);
            }
        }
        self.tasks[task].rr_edge += 1;
    }

    fn send_on_edge(&mut self, from_task: usize, edge_idx: usize, slot: usize, batch: u32) {
        let edge_to = self.topo.edge_to(edge_idx);
        let edge_from = self.topo.edge_from(edge_idx);
        let dests = &self.node_tasks[edge_to];
        debug_assert!(!dests.is_empty());
        let pick = match self.topo.edge_grouping(edge_idx) {
            Grouping::Shuffle => (self.tasks[from_task].rr_dest[slot] as usize) % dests.len(),
            Grouping::Fields { key_cardinality } => {
                let key = (self.tasks[from_task].rr_dest[slot] as usize)
                    % key_cardinality.max(1) as usize;
                key % dests.len()
            }
            Grouping::Global => 0,
        };
        self.tasks[from_task].rr_dest[slot] += 1;
        let dest = dests[pick];
        self.batches[batch as usize].outstanding += 1;
        let remote = self.tasks[from_task].worker != self.tasks[dest].worker;
        let delay = if remote {
            let bytes = self.topo.tuple_bytes(edge_from) as f64;
            self.workers[self.tasks[from_task].worker].net_bytes += bytes;
            self.workers[self.tasks[dest].worker].net_bytes += bytes;
            self.opts.network_delay_s
        } else {
            0.0
        };
        self.enqueue(dest, batch, delay);
    }

    fn maybe_commit(&mut self, batch: u32) {
        let b = &self.batches[batch as usize];
        if b.emitted_all && b.outstanding == 0 {
            let t_commit = self.cluster.batch_overhead_s
                + self.cluster.batch_coord_per_task_s
                    * (self.placement.total_tasks() + self.acker_tasks.len()) as f64;
            self.queue.schedule_in(t_commit, Ev::Commit { batch });
        }
    }

    // (named `run_des`, not `run`: the checker's call graph resolves
    // method calls by bare name, and `run` collides with half the
    // workspace's entry points — phantom edges everywhere.)
    // mtm-hot: tuple-sim
    fn run_des(&mut self) {
        for _ in 0..self.config.batch_parallelism {
            self.launch_batch();
        }
        while let Some((time, ev)) = self.queue.pop() {
            if time > self.opts.window_s {
                break;
            }
            if self.queue.events_processed() > self.opts.max_events {
                self.aborted = true;
                break;
            }
            match ev {
                Ev::Deliver { task, batch } => self.deliver(task, batch),
                Ev::Finish { task, batch } => self.finish(task, batch),
                Ev::Commit { batch } => {
                    let _ = batch;
                    self.committed += 1;
                    self.launch_batch();
                }
            }
        }
    }

    fn result(&self) -> SimResult {
        if self.aborted {
            return SimResult::failed(
                self.opts.window_s,
                self.placement.workers,
                self.placement.total_tasks(),
            );
        }
        let window = self.opts.window_s;
        let committed_tuples = self.committed * self.config.batch_size as u64;
        let throughput = committed_tuples as f64 / window;
        let avg_net = if self.placement.workers > 0 {
            self.workers.iter().map(|w| w.net_bytes).sum::<f64>()
                / (2.0 * self.placement.workers as f64) // bytes counted at both ends
                / window
                / (1024.0 * 1024.0)
        } else {
            0.0
        };
        // Approximate utilization from work performed.
        let work_units: f64 = self
            .tasks
            .iter()
            .enumerate()
            .map(|(t, st)| st.processed as f64 * self.service_units(t))
            .sum();
        let capacity: f64 = (0..self.placement.workers)
            .map(|m| {
                let threads = (self.placement.tasks_per_worker[m] as u32)
                    .min(self.config.worker_threads)
                    + self.config.receiver_threads
                    + self.placement.ackers_per_worker[m] as u32;
                self.cluster.machine_capacity(threads) * window
            })
            .sum();
        SimResult {
            throughput_tps: throughput,
            committed_batches: self.committed,
            duration_s: window,
            avg_worker_net_mbps: avg_net,
            batch_latency_s: if self.committed > 0 {
                // Little's law estimate over the run.
                Some(
                    self.config.batch_parallelism as f64 * self.config.batch_size as f64
                        / throughput.max(1e-9),
                )
            } else {
                None
            },
            cpu_utilization: (work_units / capacity.max(1e-9)).clamp(0.0, 1.0),
            workers_used: self.placement.workers,
            total_tasks: self.placement.total_tasks(),
            bottleneck: if self.committed == 0 {
                Bottleneck::Failed
            } else {
                Bottleneck::ClusterCpu
            },
        }
    }

    /// Emit the per-operator and engine statistics collected during a
    /// recorded run (requires `track_stats` at construction).
    fn emit_stats<R: Recorder>(&self, rec: &mut R) {
        for v in 0..self.topo.n_nodes() {
            let mut processed = 0u64;
            let mut hwm = 0usize;
            for &t in &self.node_tasks[v] {
                processed += self.tasks[t].processed;
                hwm = hwm.max(self.queue_hwm.get(t).copied().unwrap_or(0));
            }
            rec.record(Event::Operator {
                node: Some(v),
                label: self.topo.label(v).into(),
                tasks: self.node_tasks[v].len(),
                processed,
                queue_hwm: hwm,
            });
        }
        if !self.acker_tasks.is_empty() {
            let mut processed = 0u64;
            let mut hwm = 0usize;
            for &t in &self.acker_tasks {
                processed += self.tasks[t].processed;
                hwm = hwm.max(self.queue_hwm.get(t).copied().unwrap_or(0));
            }
            rec.record(Event::Operator {
                node: None,
                label: "ackers".into(),
                tasks: self.acker_tasks.len(),
                processed,
                queue_hwm: hwm,
            });
        }
        rec.record(Event::Engine {
            scheduled: self.queue.events_scheduled(),
            processed: self.queue.events_processed(),
            queue_peak: self.queue.peak_len(),
        });
    }
}

#[cfg(test)]
mod tests {
    // These tests deliberately pin the legacy free-function shim; the
    // equivalence suite proves the trait path returns the same bits.
    #![allow(deprecated)]
    use super::*;
    use crate::topology::TopologyBuilder;

    fn small_chain() -> Topology {
        let mut tb = TopologyBuilder::new("chain");
        let s = tb.spout("s", 1.0);
        let a = tb.bolt("a", 2.0);
        let b = tb.bolt("b", 1.0);
        tb.connect(s, a).connect(a, b);
        tb.build().unwrap()
    }

    fn fast_opts() -> TupleSimOptions {
        TupleSimOptions {
            window_s: 20.0,
            max_events: 5_000_000,
            network_delay_s: 0.000_5,
        }
    }

    fn small_config() -> StormConfig {
        StormConfig {
            batch_size: 200,
            batch_parallelism: 4,
            ..StormConfig::uniform_hints(3, 2)
        }
    }

    #[test]
    fn commits_batches_and_reports_throughput() {
        let topo = small_chain();
        let r = simulate_tuples(&topo, &small_config(), &ClusterSpec::tiny(), &fast_opts());
        assert!(r.committed_batches > 0, "batches must commit: {r:?}");
        assert!(
            (r.throughput_tps - r.committed_batches as f64 * 200.0 / r.duration_s).abs() < 1e-9
        );
    }

    #[test]
    fn recording_is_inert_and_reports_operator_stats() {
        let topo = small_chain();
        let plain = simulate_tuples(&topo, &small_config(), &ClusterSpec::tiny(), &fast_opts());
        let mut rec = mtm_obs::MemRecorder::new();
        let recorded = simulate_tuples_with(
            &topo,
            &small_config(),
            &ClusterSpec::tiny(),
            &fast_opts(),
            &mut rec,
        );
        assert_eq!(
            plain.throughput_tps.to_bits(),
            recorded.throughput_tps.to_bits(),
            "recording must not perturb the result"
        );
        assert_eq!(plain.committed_batches, recorded.committed_batches);

        assert!(
            matches!(rec.events().first(), Some(Event::SimStart { sim, .. }) if sim == "tuple")
        );
        assert!(matches!(rec.events().last(), Some(Event::SimEnd { .. })));
        let ops: Vec<_> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::Operator {
                    processed,
                    queue_hwm,
                    ..
                } => Some((*processed, *queue_hwm)),
                _ => None,
            })
            .collect();
        assert_eq!(ops.len(), topo.n_nodes() + 1, "per node + acker aggregate");
        assert!(ops.iter().any(|&(p, _)| p > 0), "work must be counted");
        assert!(
            ops.iter().any(|&(_, hwm)| hwm > 0),
            "queues must have backed up somewhere: {ops:?}"
        );
        assert!(rec.events().iter().any(
            |e| matches!(e, Event::Engine { scheduled, processed, queue_peak }
                if *scheduled > 0 && *processed > 0 && *queue_peak > 0)
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let topo = small_chain();
        let a = simulate_tuples(&topo, &small_config(), &ClusterSpec::tiny(), &fast_opts());
        let b = simulate_tuples(&topo, &small_config(), &ClusterSpec::tiny(), &fast_opts());
        assert_eq!(a.committed_batches, b.committed_batches);
        assert_eq!(a.throughput_tps, b.throughput_tps);
    }

    #[test]
    fn more_parallelism_helps_a_cpu_bound_bolt() {
        let mut tb = TopologyBuilder::new("hot");
        let s = tb.spout("s", 0.1);
        let a = tb.bolt("hot", 8.0);
        tb.connect(s, a);
        let topo = tb.build().unwrap();
        let cluster = ClusterSpec::tiny();
        let thr = |hint: u32| {
            let mut c = small_config();
            c.parallelism_hints = vec![1, hint];
            simulate_tuples(&topo, &c, &cluster, &fast_opts()).throughput_tps
        };
        let one = thr(1);
        let four = thr(4);
        assert!(four > one * 1.5, "parallelism should help: {one} vs {four}");
    }

    #[test]
    fn selectivity_amplifies_downstream_work() {
        let mut tb = TopologyBuilder::new("amp");
        let s = tb.spout("s", 0.1);
        let a = tb.bolt("fan", 0.5);
        let b = tb.bolt("sink", 1.0);
        tb.connect(s, a).connect(a, b);
        tb.selectivity(a, 3.0);
        let topo = tb.build().unwrap();
        let r = simulate_tuples(&topo, &small_config(), &ClusterSpec::tiny(), &fast_opts());
        let amp = simulate_tuples(&topo, &small_config(), &ClusterSpec::tiny(), &fast_opts());
        // The sink sees 3x the tuples the fan sees; the run must still
        // commit and throughput stays finite.
        assert!(r.committed_batches > 0 && amp.throughput_tps.is_finite());
    }

    #[test]
    fn network_bytes_are_counted_for_remote_hops() {
        let topo = small_chain();
        let r = simulate_tuples(&topo, &small_config(), &ClusterSpec::tiny(), &fast_opts());
        assert!(
            r.avg_worker_net_mbps > 0.0,
            "cross-worker edges must move bytes"
        );
    }

    #[test]
    fn impossible_batches_fail() {
        let topo = small_chain();
        let mut c = small_config();
        c.batch_size = 2_000_000; // cannot drain in the window
        let opts = TupleSimOptions {
            window_s: 2.0,
            max_events: 200_000,
            network_delay_s: 0.0,
        };
        let r = simulate_tuples(&topo, &c, &ClusterSpec::tiny(), &opts);
        assert_eq!(r.committed_batches, 0);
    }

    #[test]
    fn batch_parallelism_increases_throughput() {
        let topo = small_chain();
        let cluster = ClusterSpec::tiny();
        let thr = |bp: u32| {
            let mut c = small_config();
            c.batch_parallelism = bp;
            simulate_tuples(&topo, &c, &cluster, &fast_opts()).throughput_tps
        };
        let serial = thr(1);
        let pipelined = thr(6);
        assert!(
            pipelined > serial,
            "pipelining batches should overlap commit latency: {serial} vs {pipelined}"
        );
    }
}
