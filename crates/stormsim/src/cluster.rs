//! The hardware model: the paper's cluster of 80 student iMacs.

use serde::{Deserialize, Serialize};

/// Cluster hardware and framework-overhead parameters.
///
/// Compute is measured in *compute units*: 1 unit ≈ 1 ms of one core, the
/// paper's busy-wait calibration (§IV-B1), so one core delivers
/// `unit_rate` = 1000 units per second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Worker machines available.
    pub machines: usize,
    /// Cores per machine.
    pub cores_per_machine: u32,
    /// Compute units one core delivers per second (1 unit = 1 ms ⇒ 1000).
    pub unit_rate: f64,
    /// Full-duplex NIC bandwidth per machine, bytes/second (1 Gbps ⇒
    /// 128 MB/s, the figure the paper quotes for Fig. 3).
    pub net_bandwidth_bps: f64,
    /// Context-switch penalty: fractional capacity lost per active thread
    /// beyond the core count, e.g. 0.05 ⇒ 2x oversubscription costs ~5%
    /// per excess-thread-per-core.
    pub context_switch_penalty: f64,
    /// Tuples per second one receiver thread can deserialize and enqueue.
    pub receiver_tuple_rate: f64,
    /// Compute units per ack bookkeeping operation on an acker task.
    pub acker_cost_units: f64,
    /// Per-batch coordination latency in seconds (Trident commit protocol;
    /// what makes tiny batches expensive).
    pub batch_overhead_s: f64,
    /// Framework overhead per tuple hop in compute units (serialization,
    /// queues) — paid on every edge traversal.
    pub per_tuple_overhead_units: f64,
    /// In-flight bytes one worker can buffer before memory pressure
    /// degrades it (heap given to a Storm worker).
    pub worker_buffer_bytes: f64,
    /// Compute units per second burned by every deployed task even when
    /// idle (disruptor busy-poll, heartbeats, timers). This is what makes
    /// blind over-parallelization expensive on a real Storm cluster.
    pub task_spin_units: f64,
    /// Extra serial batch-coordination time per deployed task, seconds
    /// (Trident's commit protocol touches every task each batch).
    pub batch_coord_per_task_s: f64,
    /// Batch timeout: if end-to-end batch latency exceeds this, the
    /// topology enters a replay storm and measures zero throughput
    /// (Storm's message timeout behaviour).
    pub batch_timeout_s: f64,
    /// Exponent of the resource-contention cost: a contentious bolt with
    /// `n` task instances pays `c * n^contention_exponent` per tuple.
    /// The paper's formula (§IV-B2) is the linear `1.0` — "negate the
    /// effect of increasing parallelism"; the default is slightly
    /// super-linear because real contended resources (a central database,
    /// a lock) degrade beyond proportionally as clients pile on (lock
    /// convoys, cache-line bouncing), which is also what makes blind
    /// over-parallelization measurably *harmful*, as the paper observed.
    pub contention_exponent: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::paper_cluster()
    }
}

impl ClusterSpec {
    /// The evaluation cluster of §IV-C: 80 iMacs, 4 cores each (320 cores),
    /// gigabit switches.
    pub fn paper_cluster() -> Self {
        ClusterSpec {
            machines: 80,
            cores_per_machine: 4,
            unit_rate: 1000.0,
            net_bandwidth_bps: 128.0 * 1024.0 * 1024.0,
            context_switch_penalty: 0.06,
            receiver_tuple_rate: 250_000.0,
            acker_cost_units: 0.022,
            batch_overhead_s: 0.15,
            per_tuple_overhead_units: 0.002,
            worker_buffer_bytes: 512.0 * 1024.0 * 1024.0,
            task_spin_units: 60.0,
            batch_coord_per_task_s: 0.001,
            batch_timeout_s: 30.0,
            contention_exponent: 1.25,
        }
    }

    /// A small deterministic cluster for unit tests (2 machines × 2 cores).
    pub fn tiny() -> Self {
        ClusterSpec {
            machines: 2,
            cores_per_machine: 2,
            ..ClusterSpec::paper_cluster()
        }
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> u32 {
        self.machines as u32 * self.cores_per_machine
    }

    /// Effective compute capacity of one machine, in units/second, when a
    /// worker runs `active_threads` concurrently runnable threads on it.
    ///
    /// Fewer threads than cores leaves cores idle; more threads than cores
    /// pays a context-switch penalty that grows with oversubscription.
    pub fn machine_capacity(&self, active_threads: u32) -> f64 {
        let cores = self.cores_per_machine as f64;
        let threads = active_threads as f64;
        if threads <= 0.0 {
            return 0.0;
        }
        let usable = threads.min(cores);
        let oversub = (threads - cores).max(0.0) / cores;
        let penalty = 1.0 / (1.0 + self.context_switch_penalty * oversub);
        usable * self.unit_rate * penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_dimensions() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.machines, 80);
        assert_eq!(c.total_cores(), 320);
        // 1 Gbps in MB/s as quoted in the paper.
        assert!((c.net_bandwidth_bps / (1024.0 * 1024.0) - 128.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_rises_to_core_count() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.machine_capacity(0), 0.0);
        assert!((c.machine_capacity(1) - 1000.0).abs() < 1e-9);
        assert!((c.machine_capacity(4) - 4000.0).abs() < 1e-9);
        // 2 threads deliver exactly 2 cores' worth.
        assert!((c.machine_capacity(2) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn oversubscription_pays_a_penalty() {
        let c = ClusterSpec::paper_cluster();
        let at_cores = c.machine_capacity(4);
        let oversub = c.machine_capacity(16);
        assert!(
            oversub < at_cores,
            "16 threads on 4 cores must lose capacity"
        );
        assert!(
            oversub > at_cores * 0.7,
            "penalty should be gentle, not a cliff"
        );
        // Monotonically decreasing beyond the core count.
        assert!(c.machine_capacity(8) > c.machine_capacity(32));
    }
}
