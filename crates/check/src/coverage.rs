//! Line-coverage floors, ratcheted alongside the panic budgets.
//!
//! `check/ratchet.toml` may carry a `[coverage_floor]` table mapping a
//! workspace unit (e.g. `"crates/stormsim"`) to an integer minimum line
//! coverage percent. `mtm-check coverage` runs
//! `cargo llvm-cov --json --summary-only` (skipping with a notice when
//! the subcommand is not installed — it is an external cargo extension,
//! not part of the toolchain), aggregates per-file line counts under
//! each unit's directory, and fails if any unit falls below its floor.
//! Like the panic ratchet, floors only move in one direction: raise
//! them as coverage improves, never lower them to paper over a drop.
//!
//! The JSON reader is a purpose-built scanner, not a JSON parser: this
//! crate is deliberately dependency-free, and the llvm-cov export
//! format is stable enough that extracting `"filename"` plus the
//! adjacent `"lines":{"count":…,"covered":…}` summary is robust. The
//! scanner is tolerant — anything it cannot read it skips, and missing
//! data surfaces as a unit with no files (a hard failure, never a
//! silent pass).

use std::collections::BTreeMap;

/// The ratchet table holding per-unit coverage floors.
pub const COVERAGE_TABLE: &str = "coverage_floor";

/// Line-coverage summary for one source file, as reported by llvm-cov.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCoverage {
    /// Path as llvm-cov printed it (usually absolute).
    pub filename: String,
    /// Instrumented (countable) lines.
    pub lines_count: u64,
    /// Lines executed at least once.
    pub lines_covered: u64,
}

/// Extract per-file line-coverage summaries from `cargo llvm-cov --json`
/// output (the llvm `coverage export` format). Files the scanner cannot
/// read are skipped rather than guessed at.
pub fn parse_llvm_cov_json(json: &str) -> Vec<FileCoverage> {
    let mut files = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"filename\"") {
        rest = rest.get(pos + "\"filename\"".len()..).unwrap_or("");
        let Some(filename) = read_string_value(rest) else {
            continue;
        };
        // The file's summary block follows its region list; stop the
        // search at the next filename so one file's numbers can never be
        // attributed to another.
        let window_end = rest.find("\"filename\"").unwrap_or(rest.len());
        let window = rest.get(..window_end).unwrap_or(rest);
        let Some(lines_pos) = window.find("\"lines\"") else {
            continue;
        };
        let lines = window.get(lines_pos..).unwrap_or("");
        let (Some(count), Some(covered)) = (
            read_number_field(lines, "\"count\""),
            read_number_field(lines, "\"covered\""),
        ) else {
            continue;
        };
        files.push(FileCoverage {
            filename,
            lines_count: count,
            lines_covered: covered,
        });
    }
    files
}

/// Read the string value after a `"key"` occurrence: skips `:` and
/// whitespace, returns the quoted contents (no escape handling — cargo
/// file paths in this workspace never contain `\` or `"`).
fn read_string_value(after_key: &str) -> Option<String> {
    let rest = after_key.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    rest.get(..end).map(str::to_string)
}

/// Read the unsigned integer value of the first `"key": N` inside
/// `text`.
fn read_number_field(text: &str, key: &str) -> Option<u64> {
    let pos = text.find(key)?;
    let rest = text.get(pos + key.len()..)?.trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest.get(..end)?.parse().ok()
}

/// Aggregate line coverage over every file under a workspace unit's
/// directory (`crates/stormsim` matches any path containing
/// `/crates/stormsim/`). Returns `(covered, countable)`, or `None` when
/// no instrumented file matched.
pub fn unit_line_coverage(files: &[FileCoverage], unit: &str) -> Option<(u64, u64)> {
    let needle = format!("/{}/", unit.trim_matches('/'));
    let mut covered = 0u64;
    let mut count = 0u64;
    let mut any = false;
    for f in files {
        let normalized = f.filename.replace('\\', "/");
        if normalized.contains(&needle) {
            any = true;
            covered += f.lines_covered;
            count += f.lines_count;
        }
    }
    any.then_some((covered, count))
}

/// Compare measured coverage against the recorded floors. Returns
/// `(failures, report)`: floors not met (or units with no instrumented
/// files at all), and one human-readable line per floor checked.
pub fn check_floors(
    floors: &BTreeMap<String, usize>,
    files: &[FileCoverage],
) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut report = Vec::new();
    for (unit, &floor) in floors {
        match unit_line_coverage(files, unit) {
            Some((covered, count)) if count > 0 => {
                // Integer-floor percent: 79.9% measured does NOT pass an
                // 80 floor.
                let percent = covered.saturating_mul(100).checked_div(count).unwrap_or(0);
                report.push(format!(
                    "{unit}: {percent}% line coverage ({covered}/{count} lines, floor {floor}%)"
                ));
                if (percent as usize) < floor {
                    failures.push(format!(
                        "[{COVERAGE_TABLE}] {unit}: {percent}% < floor {floor}%"
                    ));
                }
            }
            _ => failures.push(format!(
                "[{COVERAGE_TABLE}] {unit}: no instrumented lines in the coverage report"
            )),
        }
    }
    (failures, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed-down export in the shape `cargo llvm-cov --json`
    /// produces (llvm.coverage.json.export): files carry a summary with
    /// `lines.count`/`lines.covered` after their region data.
    const SAMPLE: &str = r#"{"data":[{"files":[
        {"filename":"/w/crates/obs/src/event.rs","segments":[[1,1,5,true,true]],
         "summary":{"functions":{"count":4,"covered":4},
                    "lines":{"count":120,"covered":108,"percent":90.0}}},
        {"filename":"/w/crates/obs/src/recorder.rs",
         "summary":{"lines":{"count":80,"covered":80,"percent":100.0}}},
        {"filename":"/w/crates/stormsim/src/flow_sim.rs",
         "summary":{"lines":{"count":400,"covered":300,"percent":75.0}}}
    ],"totals":{"lines":{"count":600,"covered":488}}}],"type":"llvm.coverage.json.export","version":"2.0.1"}"#;

    #[test]
    fn parses_per_file_line_summaries() {
        let files = parse_llvm_cov_json(SAMPLE);
        assert_eq!(files.len(), 3);
        let event = files
            .iter()
            .find(|f| f.filename.ends_with("event.rs"))
            .expect("event.rs parsed");
        assert_eq!((event.lines_count, event.lines_covered), (120, 108));
    }

    #[test]
    fn aggregates_by_unit_directory() {
        let files = parse_llvm_cov_json(SAMPLE);
        assert_eq!(unit_line_coverage(&files, "crates/obs"), Some((188, 200)));
        assert_eq!(
            unit_line_coverage(&files, "crates/stormsim"),
            Some((300, 400))
        );
        assert_eq!(unit_line_coverage(&files, "crates/gp"), None);
    }

    #[test]
    fn floor_pass_and_fail() {
        let files = parse_llvm_cov_json(SAMPLE);
        let floors: BTreeMap<String, usize> = [
            ("crates/obs".to_string(), 90),      // 94% measured → pass
            ("crates/stormsim".to_string(), 80), // 75% measured → fail
            ("crates/missing".to_string(), 10),  // absent → fail
        ]
        .into_iter()
        .collect();
        let (failures, report) = check_floors(&floors, &files);
        assert_eq!(report.len(), 2, "{report:?}");
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("75% < floor 80%")));
        assert!(failures.iter().any(|f| f.contains("no instrumented")));
    }

    #[test]
    fn truncated_input_yields_no_phantom_files() {
        let cut = SAMPLE.len() / 2;
        let files = parse_llvm_cov_json(&SAMPLE[..cut]);
        // Whatever parses must be complete records; nothing invented.
        for f in &files {
            assert!(f.lines_count >= f.lines_covered);
        }
    }

    #[test]
    fn integer_floor_is_strict() {
        // 799/1000 = 79.9% floors to 79 and must fail an 80% floor.
        let files = vec![FileCoverage {
            filename: "/w/crates/obs/src/lib.rs".into(),
            lines_count: 1000,
            lines_covered: 799,
        }];
        let floors: BTreeMap<String, usize> = [("crates/obs".to_string(), 80)].into();
        let (failures, _) = check_floors(&floors, &files);
        assert_eq!(failures.len(), 1);
    }
}
