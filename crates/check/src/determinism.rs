//! The nondeterminism detector.
//!
//! A stream-processing tuning loop is only trustworthy if the simulator is
//! a pure function of `(topology, config, seed)` — any hidden global state
//! (time, iteration order over hash maps, uninitialized memory) corrupts
//! the GP's training set silently. This module runs a probe command twice
//! and diffs its stdout **bit for bit**: the simulator-world analogue of a
//! race detector. The probe (`src/bin/determinism_probe.rs` in the root
//! crate) prints full metrics from the flow simulator, the per-tuple
//! simulator, and a short BO loop, all under fixed seeds.

use std::process::Command;

/// Result of comparing two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffOutcome {
    /// Bit-for-bit identical output.
    pub identical: bool,
    /// First differing line: `(1-based line, run A line, run B line)`.
    pub first_divergence: Option<(usize, String, String)>,
    /// Total lines compared (max of the two runs).
    pub lines: usize,
}

/// Compare two captured outputs bit for bit, reporting the first
/// divergence line for diagnostics.
pub fn diff_bitwise(a: &str, b: &str) -> DiffOutcome {
    if a == b {
        return DiffOutcome {
            identical: true,
            first_divergence: None,
            lines: a.lines().count(),
        };
    }
    let la: Vec<&str> = a.lines().collect();
    let lb: Vec<&str> = b.lines().collect();
    let lines = la.len().max(lb.len());
    for i in 0..lines {
        let x = la.get(i).copied().unwrap_or("<missing>");
        let y = lb.get(i).copied().unwrap_or("<missing>");
        if x != y {
            return DiffOutcome {
                identical: false,
                first_divergence: Some((i + 1, x.to_string(), y.to_string())),
                lines,
            };
        }
    }
    // Same lines but different bytes (e.g. trailing newline / CR): still a
    // failure, pointed at the end.
    DiffOutcome {
        identical: false,
        first_divergence: Some((lines, "<byte-level difference>".into(), String::new())),
        lines,
    }
}

/// Run `program args...` and capture stdout; non-zero exit or spawn
/// failure is an error with the command's stderr attached.
pub fn run_capture(program: &str, args: &[&str]) -> Result<String, String> {
    let output = Command::new(program)
        .args(args)
        .output()
        .map_err(|e| format!("spawn {program}: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "{program} {} exited with {}: {}",
            args.join(" "),
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    String::from_utf8(output.stdout).map_err(|e| format!("non-UTF8 output: {e}"))
}

/// Run the probe command twice and diff.
pub fn run_twice_and_diff(program: &str, args: &[&str]) -> Result<DiffOutcome, String> {
    let first = run_capture(program, args)?;
    let second = run_capture(program, args)?;
    Ok(diff_bitwise(&first, &second))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_pass() {
        let out = diff_bitwise("a\nb\n", "a\nb\n");
        assert!(out.identical);
        assert_eq!(out.lines, 2);
    }

    #[test]
    fn divergence_is_located() {
        let out = diff_bitwise("a\nb\nc\n", "a\nX\nc\n");
        assert!(!out.identical);
        let (line, x, y) = out.first_divergence.expect("divergence");
        assert_eq!((line, x.as_str(), y.as_str()), (2, "b", "X"));
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let out = diff_bitwise("a\n", "a\nb\n");
        assert!(!out.identical);
        assert_eq!(out.first_divergence.expect("divergence").0, 2);
    }

    #[test]
    fn trailing_byte_difference_is_caught() {
        let out = diff_bitwise("a\nb", "a\nb\n");
        assert!(!out.identical);
    }

    #[test]
    fn run_capture_reports_stdout() {
        // `true` and `echo` exist on any CI runner this repo targets.
        let out = run_capture("echo", &["deterministic"]).expect("echo runs");
        assert_eq!(out.trim(), "deterministic");
    }

    #[test]
    fn run_capture_fails_on_bad_exit() {
        assert!(run_capture("false", &[]).is_err());
    }
}
