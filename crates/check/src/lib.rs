//! Correctness tooling for the mtm workspace.
//!
//! Three passes, exposed through the `mtm-check` binary
//! (`cargo run -p mtm-check -- <subcommand>`):
//!
//! * [`lint`] — a self-contained source-level scanner enforcing
//!   repo-specific rules: panic sites in library code are ratcheted (the
//!   count recorded in `check/ratchet.toml` can only go down), float
//!   `==`/`!=` is banned in the numeric kernels unless annotated,
//!   `unsafe` requires a `// SAFETY:` comment, and panicking `pub fn`s in
//!   `linalg`/`gp` must carry a `# Panics` doc section.
//! * [`invariants`] — runtime guard functions (finite, symmetric, PSD,
//!   monotonic time) that `linalg`/`gp`/`stormsim`/`bayesopt` re-export
//!   and call behind their `strict-invariants` feature.
//! * [`determinism`] — run-twice-and-diff support: the simulators and a
//!   short BO loop must produce bit-identical output under a fixed seed.
//!
//! The library deliberately has no dependencies (std only) so the numeric
//! crates can depend on it without cycles or bloat.

pub mod determinism;
pub mod invariants;
pub mod lint;
pub mod ratchet;
