//! Correctness tooling for the mtm workspace.
//!
//! Four passes, exposed through the `mtm-check` binary
//! (`cargo run -p mtm-check -- <subcommand>`):
//!
//! * [`analyze`] — the AST-backed static analyzer: a self-contained
//!   parser ([`ast`]) feeds a workspace call graph ([`callgraph`]) and
//!   five analyses — determinism taint ([`taint`]: nondeterminism
//!   sources reaching journaled/measured values, adjudicated by
//!   `// mtm-allow: <key> -- <reason>` annotations), panic-path counting
//!   (`.unwrap()`/indexing/integer-div budgets in `check/ratchet.toml`,
//!   counts only go down), float sanity (`==`/`!=` on floats,
//!   `partial_cmp().unwrap()`, order-sensitive parallel reductions), the
//!   hot-path allocation pass ([`hotpath`]: alloc/lock/IO sites
//!   reachable from `// mtm-hot: <key>` roots, ratcheted per crate in
//!   the `[alloc_hot]` table), and the lock-region pass ([`lockregion`]:
//!   blocking-under-lock, lock-order cycles and guard-across-wait over
//!   `// mtm-lock: <name>` named locks, ratcheted in
//!   `[blocking_under_lock]` / `[lock_order]`).
//! * [`lint`] — the comment-driven rules that stay text-based: `unsafe`
//!   requires a `// SAFETY:` comment, and panicking `pub fn`s in
//!   `linalg`/`gp` must carry a `# Panics` doc section.
//! * [`invariants`] — runtime guard functions (finite, symmetric, PSD,
//!   monotonic time) that `linalg`/`gp`/`stormsim`/`bayesopt` re-export
//!   and call behind their `strict-invariants` feature.
//! * [`determinism`] — run-twice-and-diff support: the simulators and a
//!   short BO loop must produce bit-identical output under a fixed seed.
//!
//! The library deliberately has no dependencies (std only) so the numeric
//! crates can depend on it without cycles or bloat.

pub mod analyze;
pub mod ast;
pub mod callgraph;
pub mod coverage;
pub mod determinism;
pub mod diag;
pub mod hotpath;
pub mod invariants;
pub mod lint;
pub mod lockregion;
pub mod ratchet;
pub mod taint;
