//! The panic-site ratchet.
//!
//! `check/ratchet.toml` records the number of `.unwrap()` / `.expect(` /
//! `panic!` sites in each crate's library code. `mtm-check lint` fails
//! when any count *rises* above its recorded value; falling counts are
//! reported so the file can be tightened with
//! `cargo run -p mtm-check -- lint --update-ratchet`. The file is parsed
//! with a purpose-built reader (the workspace has no TOML dependency) —
//! it understands exactly the subset the writer emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed ratchet state: per-unit panic-site ceilings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// Unit (`crates/<name>` or `src`) → maximum allowed panic sites.
    pub counts: BTreeMap<String, usize>,
}

impl Ratchet {
    /// Parse the `check/ratchet.toml` format: a `[panic_sites]` table of
    /// `"unit" = count` entries. Comments and blank lines are ignored.
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let mut counts = BTreeMap::new();
        let mut in_table = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_table = line == "[panic_sites]";
                continue;
            }
            if !in_table {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("ratchet.toml:{}: expected `key = count`", lineno + 1))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value
                .trim()
                .parse()
                .map_err(|e| format!("ratchet.toml:{}: bad count: {e}", lineno + 1))?;
            counts.insert(key, value);
        }
        Ok(Ratchet { counts })
    }

    /// Render the canonical file contents for `counts`.
    pub fn render(counts: &BTreeMap<String, usize>) -> String {
        let mut out = String::from(
            "# Panic-site ratchet: per-crate counts of `.unwrap()` / `.expect(` /\n\
             # `panic!` in library code outside `#[cfg(test)]`. `mtm-check lint`\n\
             # fails if any count rises; regenerate after *reducing* sites with:\n\
             #\n\
             #     cargo run -p mtm-check -- lint --update-ratchet\n\
             \n\
             [panic_sites]\n",
        );
        for (unit, count) in counts {
            let _ = writeln!(out, "\"{unit}\" = {count}");
        }
        out
    }

    /// Compare current counts against the recorded ceilings. Returns
    /// `(failures, tightenable)`: units whose count rose (including units
    /// absent from the file), and units whose count fell.
    pub fn compare(&self, current: &BTreeMap<String, usize>) -> (Vec<String>, Vec<String>) {
        let mut failures = Vec::new();
        let mut tighten = Vec::new();
        for (unit, &count) in current {
            match self.counts.get(unit) {
                Some(&ceiling) if count > ceiling => failures.push(format!(
                    "{unit}: {count} panic sites, ratchet allows {ceiling}"
                )),
                Some(&ceiling) if count < ceiling => tighten.push(format!(
                    "{unit}: {count} panic sites, ratchet still at {ceiling}"
                )),
                Some(_) => {}
                None => failures.push(format!(
                    "{unit}: {count} panic sites, not present in check/ratchet.toml"
                )),
            }
        }
        for unit in self.counts.keys() {
            if !current.contains_key(unit) && self.counts[unit] > 0 {
                tighten.push(format!(
                    "{unit}: 0 panic sites, ratchet still at {}",
                    self.counts[unit]
                ));
            }
        }
        (failures, tighten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn round_trips() {
        let c = counts(&[("crates/gp", 3), ("src", 1)]);
        let rendered = Ratchet::render(&c);
        let parsed = Ratchet::parse(&rendered).expect("parse");
        assert_eq!(parsed.counts, c);
    }

    #[test]
    fn increase_is_a_failure() {
        let ratchet = Ratchet {
            counts: counts(&[("crates/gp", 2)]),
        };
        let (failures, _) = ratchet.compare(&counts(&[("crates/gp", 3)]));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("allows 2"), "{failures:?}");
    }

    #[test]
    fn unknown_unit_is_a_failure() {
        let ratchet = Ratchet::default();
        let (failures, _) = ratchet.compare(&counts(&[("crates/new", 1)]));
        assert_eq!(failures.len(), 1);
    }

    #[test]
    fn decrease_only_suggests_tightening() {
        let ratchet = Ratchet {
            counts: counts(&[("crates/gp", 5)]),
        };
        let (failures, tighten) = ratchet.compare(&counts(&[("crates/gp", 3)]));
        assert!(failures.is_empty());
        assert_eq!(tighten.len(), 1);
    }

    #[test]
    fn equal_counts_pass_silently() {
        let ratchet = Ratchet {
            counts: counts(&[("crates/gp", 5)]),
        };
        let (failures, tighten) = ratchet.compare(&counts(&[("crates/gp", 5)]));
        assert!(failures.is_empty() && tighten.is_empty());
    }
}
