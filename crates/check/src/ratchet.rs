//! The panic-path ratchet.
//!
//! `check/ratchet.toml` records per-crate budgets for the sites the AST
//! pass ([`crate::analyze`]) counts, in six tables:
//!
//! * `[panic_sites]` — `.unwrap()` / `.expect(` / `panic!` outside tests
//! * `[index_sites]` — postfix indexing (`xs[i]`), which panics out of
//!   bounds
//! * `[div_sites]` — integer `/`/`%` with a non-constant divisor, which
//!   panics on zero
//! * `[alloc_hot]` — allocation/lock/IO sites reachable from `mtm-hot`
//!   roots and not sanctioned by an `mtm-allow: alloc` annotation
//!   ([`crate::hotpath`]); units absent from the table are held at zero
//! * `[blocking_under_lock]` — IO/join/sleep/hot-work sites reachable
//!   while a lock guard is held, minus `mtm-allow: lock` sanctioned ones
//!   ([`crate::lockregion`]); absent units are held at zero
//! * `[lock_order]` — acquired-while-holding edges that participate in a
//!   lock-order cycle, double-lock self-cycles included
//!   ([`crate::lockregion`])
//!
//! `mtm-check analyze` fails when any count *rises* above its recorded
//! value; falling counts are reported so the file can be tightened with
//! `cargo run -p mtm-check -- analyze --update-ratchet`. The file is
//! parsed with a purpose-built reader (the workspace has no TOML
//! dependency) — it understands exactly the subset the writer emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The table names, in file order.
pub const TABLES: &[&str] = &[
    "panic_sites",
    "index_sites",
    "div_sites",
    "alloc_hot",
    "blocking_under_lock",
    "lock_order",
];

/// Per-unit site counts produced by the analyzer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounts {
    /// `.unwrap()` / `.expect(` / `panic!` sites.
    pub panic_sites: usize,
    /// Postfix indexing sites.
    pub index_sites: usize,
    /// Unguarded integer division/remainder sites.
    pub div_sites: usize,
    /// Allocation/lock/IO sites reachable from `mtm-hot` roots and not
    /// covered by an `alloc` allow (see [`crate::hotpath`]).
    pub alloc_hot: usize,
    /// Blocking (IO/join/sleep/hot-work) sites inside a held lock region
    /// and not covered by a `lock` allow (see [`crate::lockregion`]).
    pub blocking_under_lock: usize,
    /// Acquired-while-holding edges participating in a lock-order cycle
    /// (see [`crate::lockregion`]).
    pub lock_order: usize,
}

impl SiteCounts {
    /// All counts are zero.
    pub fn is_zero(&self) -> bool {
        self.panic_sites == 0
            && self.index_sites == 0
            && self.div_sites == 0
            && self.alloc_hot == 0
            && self.blocking_under_lock == 0
            && self.lock_order == 0
    }

    /// The count for a named table.
    pub fn get(&self, table: &str) -> usize {
        match table {
            "panic_sites" => self.panic_sites,
            "index_sites" => self.index_sites,
            "div_sites" => self.div_sites,
            "alloc_hot" => self.alloc_hot,
            "blocking_under_lock" => self.blocking_under_lock,
            "lock_order" => self.lock_order,
            _ => 0,
        }
    }
}

/// Parsed ratchet state: per-table, per-unit ceilings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ratchet {
    /// Table name → (unit → maximum allowed sites).
    pub tables: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Ratchet {
    /// Parse the `check/ratchet.toml` format: `[table]` headers over
    /// `"unit" = count` entries. Comments and blank lines are ignored;
    /// unknown tables are preserved (forward compatibility).
    pub fn parse(text: &str) -> Result<Ratchet, String> {
        let mut tables: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                tables.entry(name.clone()).or_default();
                current = Some(name);
                continue;
            }
            let Some(table) = &current else {
                return Err(format!(
                    "ratchet.toml:{}: entry before any [table] header",
                    lineno + 1
                ));
            };
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("ratchet.toml:{}: expected `key = count`", lineno + 1))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value
                .trim()
                .parse()
                .map_err(|e| format!("ratchet.toml:{}: bad count: {e}", lineno + 1))?;
            tables.entry(table.clone()).or_default().insert(key, value);
        }
        Ok(Ratchet { tables })
    }

    /// Render the canonical file contents for the analyzer's per-unit
    /// counts, carrying over any tables this module does not own (e.g.
    /// `[coverage_floor]`) so `--update-ratchet` cannot drop them.
    pub fn render_with(counts: &BTreeMap<String, SiteCounts>, extras: &Ratchet) -> String {
        let mut out = Self::render(counts);
        for (name, entries) in &extras.tables {
            if TABLES.contains(&name.as_str()) {
                continue;
            }
            let _ = writeln!(out, "\n[{name}]");
            for (unit, value) in entries {
                let _ = writeln!(out, "\"{unit}\" = {value}");
            }
        }
        out
    }

    /// Render the canonical file contents for the analyzer's per-unit
    /// counts. Units with a zero count in a table are omitted from it.
    pub fn render(counts: &BTreeMap<String, SiteCounts>) -> String {
        let mut out = String::from(
            "# Panic-path ratchet: per-crate AST-counted sites in library code\n\
             # outside `#[cfg(test)]` (strict-invariants guards excluded).\n\
             #   panic_sites — `.unwrap()` / `.expect(` / `panic!`\n\
             #   index_sites — postfix indexing `xs[i]` (panics out of bounds)\n\
             #   div_sites   — integer `/` `%` with non-constant divisor\n\
             #   alloc_hot   — alloc/lock/IO sites reachable from `mtm-hot`\n\
             #                 roots, minus `mtm-allow: alloc` sanctioned ones\n\
             #   blocking_under_lock — IO/join/sleep/hot-work reachable while\n\
             #                 a guard is held, minus `mtm-allow: lock` ones\n\
             #   lock_order  — acquired-while-holding edges on a lock-order\n\
             #                 cycle (double-lock included)\n\
             # `mtm-check analyze` fails if any count rises; regenerate after\n\
             # *reducing* sites with:\n\
             #\n\
             #     cargo run -p mtm-check -- analyze --update-ratchet\n",
        );
        for table in TABLES {
            let _ = writeln!(out, "\n[{table}]");
            for (unit, c) in counts {
                let n = c.get(table);
                if n > 0 {
                    let _ = writeln!(out, "\"{unit}\" = {n}");
                }
            }
        }
        out
    }

    /// Compare current counts against the recorded ceilings. Returns
    /// `(failures, tightenable)`: table entries whose count rose
    /// (including units absent from the file), and entries whose count
    /// fell.
    pub fn compare(&self, current: &BTreeMap<String, SiteCounts>) -> (Vec<String>, Vec<String>) {
        let mut failures = Vec::new();
        let mut tighten = Vec::new();
        static EMPTY: BTreeMap<String, usize> = BTreeMap::new();
        for table in TABLES {
            let recorded = self.tables.get(*table).unwrap_or(&EMPTY);
            for (unit, counts) in current {
                let count = counts.get(table);
                if count == 0 {
                    continue;
                }
                match recorded.get(unit) {
                    Some(&ceiling) if count > ceiling => failures.push(format!(
                        "[{table}] {unit}: {count} sites, ratchet allows {ceiling}"
                    )),
                    Some(&ceiling) if count < ceiling => tighten.push(format!(
                        "[{table}] {unit}: {count} sites, ratchet still at {ceiling}"
                    )),
                    Some(_) => {}
                    None => failures.push(format!(
                        "[{table}] {unit}: {count} sites, not present in check/ratchet.toml"
                    )),
                }
            }
            for (unit, &ceiling) in recorded {
                let count = current.get(unit).map_or(0, |c| c.get(table));
                if count == 0 && ceiling > 0 {
                    tighten.push(format!(
                        "[{table}] {unit}: 0 sites, ratchet still at {ceiling}"
                    ));
                }
            }
        }
        (failures, tighten)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize, usize, usize)]) -> BTreeMap<String, SiteCounts> {
        pairs
            .iter()
            .map(|&(k, p, x, d)| {
                (
                    k.to_string(),
                    SiteCounts {
                        panic_sites: p,
                        index_sites: x,
                        div_sites: d,
                        ..SiteCounts::default()
                    },
                )
            })
            .collect()
    }

    #[test]
    fn round_trips() {
        let c = counts(&[("crates/gp", 3, 7, 1), ("src", 1, 0, 2)]);
        let rendered = Ratchet::render(&c);
        let parsed = Ratchet::parse(&rendered).expect("parse");
        assert_eq!(parsed.tables["panic_sites"]["crates/gp"], 3);
        assert_eq!(parsed.tables["index_sites"]["crates/gp"], 7);
        assert_eq!(parsed.tables["div_sites"]["src"], 2);
        // Zero counts are omitted.
        assert!(!parsed.tables["index_sites"].contains_key("src"));
    }

    #[test]
    fn increase_is_a_failure_per_table() {
        let recorded = Ratchet::parse("[panic_sites]\n\"crates/gp\" = 2\n").expect("parse");
        let (failures, _) = recorded.compare(&counts(&[("crates/gp", 3, 0, 0)]));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("allows 2"), "{failures:?}");
        assert!(failures[0].contains("[panic_sites]"), "{failures:?}");
    }

    #[test]
    fn unknown_unit_is_a_failure() {
        let ratchet = Ratchet::default();
        let (failures, _) = ratchet.compare(&counts(&[("crates/new", 1, 0, 0)]));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("not present"), "{failures:?}");
    }

    #[test]
    fn decrease_only_suggests_tightening() {
        let recorded = Ratchet::parse("[index_sites]\n\"crates/gp\" = 5\n").expect("parse");
        let (failures, tighten) = recorded.compare(&counts(&[("crates/gp", 0, 3, 0)]));
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(tighten.len(), 1, "{tighten:?}");
    }

    #[test]
    fn vanished_unit_suggests_tightening() {
        let recorded = Ratchet::parse("[panic_sites]\n\"crates/old\" = 4\n").expect("parse");
        let (failures, tighten) = recorded.compare(&counts(&[]));
        assert!(failures.is_empty());
        assert_eq!(tighten.len(), 1);
    }

    #[test]
    fn equal_counts_pass_silently() {
        let recorded =
            Ratchet::parse("[panic_sites]\n\"crates/gp\" = 5\n[index_sites]\n\"crates/gp\" = 2\n")
                .expect("parse");
        let (failures, tighten) = recorded.compare(&counts(&[("crates/gp", 5, 2, 0)]));
        assert!(failures.is_empty() && tighten.is_empty());
    }

    #[test]
    fn entry_before_table_is_an_error() {
        assert!(Ratchet::parse("\"crates/gp\" = 1\n").is_err());
    }

    #[test]
    fn unknown_tables_survive_a_rewrite() {
        let text = "[panic_sites]\n\"crates/gp\" = 2\n\n[coverage_floor]\n\"crates/obs\" = 80\n";
        let parsed = Ratchet::parse(text).expect("parse");
        let rendered = Ratchet::render_with(&counts(&[("crates/gp", 2, 0, 0)]), &parsed);
        let reparsed = Ratchet::parse(&rendered).expect("reparse");
        assert_eq!(reparsed.tables["coverage_floor"]["crates/obs"], 80);
        assert_eq!(reparsed.tables["panic_sites"]["crates/gp"], 2);
        // The counted tables come from `counts`, not the old file — the
        // extras path must never duplicate them.
        assert_eq!(rendered.matches("[panic_sites]").count(), 1);
    }
}
