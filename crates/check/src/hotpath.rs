//! Interprocedural hot-path allocation analysis.
//!
//! The zero-alloc recorder and the simulator inner loops only stay fast
//! if nothing on their call paths quietly heap-allocates, locks, or does
//! IO. This pass makes that a checked property instead of a hope:
//!
//! * **Roots** are functions annotated `// mtm-hot: <key>` within three
//!   lines above their signature (the same window as fn-level
//!   `mtm-allow`s). The key names the loop for the report — `recorder`,
//!   `flow-sim`, `tuple-sim`, `acq-score`, `trial-loop`.
//! * **Cuts** are functions annotated `// mtm-cold: <reason>`: the walk
//!   does not descend into them. They mark once-per-trial seams (a whole
//!   simulated evaluation run, a journal write) whose setup cost is the
//!   sanctioned design.
//! * The pass walks the call graph's callee edges from every root,
//!   including **closure seams** ([`CallGraph::closure_seams`]): a
//!   closure defined in a cold function but passed to a hot callee is
//!   scanned (and its own calls walked) as if it were inlined at the
//!   callee — code runs where it is *invoked*, not where it is written.
//! * Every reached body is scanned for allocation sites (`Vec::new`,
//!   `vec!`/`format!`, `.push(`/`.collect(`/`.clone(`/`.to_string(` …,
//!   `Box::new`, `String::from`), blocking (`.lock(`) and IO
//!   (`File::open`, `.write_all(`, `println!`). `with_capacity` and
//!   `.into(` are deliberately *not* sites: pre-sizing is the sanctioned
//!   escape hatch, and `.into(` is overwhelmingly a cheap conversion.
//!
//! A site is suppressed by `// mtm-allow: alloc -- <reason>` (fn-level
//! or line-level, adjudicated exactly like taint allows, stale ones
//! included). Unsuppressed sites count into the `[alloc_hot]` ratchet
//! table per unit — units absent from the table are held at **zero**, so
//! the hot crates (`obs`, `stormsim`, `bayesopt`) simply carry no entry,
//! while numeric crates called per-proposal (`gp`, `linalg`) carry an
//! audited budget.
//!
//! Stale annotations are errors: an `mtm-hot`/`mtm-cold` comment that no
//! longer sits above a function signature reports `hotpath/stale` — a
//! detached annotation silently un-guards (or un-cuts) a loop.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{CrateAst, Delim, Tok, TokKind, Tree};
use crate::callgraph::{CallGraph, FnId};
use crate::diag::{Diag, Report};
use crate::ratchet::SiteCounts;
use crate::taint::{self, Allow};

/// The allow key adjudicating this pass's findings.
pub const ALLOC_KEY: &str = "alloc";

/// Method calls that allocate, lock, or perform IO. `with_capacity` is
/// deliberately absent (pre-sizing is the fix, not a finding), as is
/// `.into(` (too often a no-alloc conversion to be a useful signal).
const SITE_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "insert",
    "append",
    "extend",
    "extend_from_slice",
    "reserve",
    "resize",
    "collect",
    "clone",
    "to_vec",
    "to_string",
    "to_owned",
    "join",
    "concat",
    "lock",
    "write_all",
    "flush",
    "read_to_string",
    "read_to_end",
];

/// Macros that allocate or perform IO.
const SITE_MACROS: &[&str] = &["vec", "format", "println", "eprintln", "print", "eprint"];

/// `Type::method` paths that allocate or open IO handles.
const SITE_QUALS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("VecDeque", "new"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("HashMap", "new"),
    ("HashSet", "new"),
    ("File", "open"),
    ("File", "create"),
];

/// What the hot-path pass found (also feeds `analyze --hot` output).
#[derive(Debug, Default)]
pub struct HotSummary {
    /// `(key, qualified fn)` per matched `mtm-hot` root.
    pub roots: Vec<(String, String)>,
    /// Functions in the hot closure (roots included, cold cuts excluded).
    pub reached: usize,
    /// Unsuppressed sites, in deterministic (crate/file/line) order.
    pub sites: Vec<HotSite>,
}

/// One unsuppressed allocation/lock/IO site on a hot path.
#[derive(Debug)]
pub struct HotSite {
    /// Ratchet unit charged for the site.
    pub unit: String,
    /// File containing the site.
    pub file: String,
    /// Line of the site.
    pub line: usize,
    /// What was seen (for the report).
    pub what: String,
    /// Qualified function (or `… (closure)`) containing it.
    pub in_fn: String,
}

/// Run the pass: resolve annotations, walk reachability, scan and
/// adjudicate sites, and charge the remainder to `counts[unit].alloc_hot`.
pub fn run(
    graph: &CallGraph,
    crates: &[CrateAst],
    allows: &mut Vec<Allow>,
    report: &mut Report,
    counts: &mut BTreeMap<String, SiteCounts>,
) -> HotSummary {
    let mut summary = HotSummary::default();

    // 1. Annotation collection. Only the first line of a wrapped comment
    //    carries the marker; continuation lines are plain text.
    let mut hot_annots: Vec<(String, usize, String)> = Vec::new();
    let mut cold_annots: Vec<(String, usize)> = Vec::new();
    for krate in crates {
        for file in &krate.files {
            for c in &file.comments {
                let text = c.text.trim();
                if let Some(rest) = text.strip_prefix("mtm-hot:") {
                    let key = rest.trim().to_string();
                    if key.is_empty() {
                        report.push(Diag::new(
                            "annotation/malformed",
                            &file.rel,
                            c.line,
                            "mtm-hot annotation needs a key naming the hot loop",
                        ));
                    } else {
                        hot_annots.push((file.rel.clone(), c.line, key));
                    }
                } else if let Some(rest) = text.strip_prefix("mtm-cold:") {
                    if rest.trim().is_empty() {
                        report.push(Diag::new(
                            "annotation/malformed",
                            &file.rel,
                            c.line,
                            "mtm-cold annotation needs a `<reason>`",
                        ));
                    } else {
                        cold_annots.push((file.rel.clone(), c.line));
                    }
                }
            }
        }
    }

    // 2. Match annotations to the function directly below (within the
    //    same three-line window as fn-level allows). Unmatched = stale.
    let find_fn = |file: &str, line: usize| -> Option<FnId> {
        graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.line > line && f.line - line <= 3)
            .min_by_key(|(_, f)| f.line)
            .map(|(id, _)| id)
    };
    let mut roots: Vec<FnId> = Vec::new();
    for (file, line, key) in &hot_annots {
        match find_fn(file, *line) {
            Some(id) => {
                summary
                    .roots
                    .push((key.clone(), graph.fns[id].qual.clone()));
                roots.push(id);
            }
            None => report.push(Diag::new(
                "hotpath/stale",
                file,
                *line,
                format!(
                    "mtm-hot annotation (`{key}`) is not within 3 lines above a \
                     non-test function signature — reattach or remove it"
                ),
            )),
        }
    }
    let mut cold: BTreeSet<FnId> = BTreeSet::new();
    for (file, line) in &cold_annots {
        match find_fn(file, *line) {
            Some(id) => {
                cold.insert(id);
            }
            None => report.push(Diag::new(
                "hotpath/stale",
                file,
                *line,
                "mtm-cold annotation is not within 3 lines above a non-test \
                 function signature — reattach or remove it"
                    .to_string(),
            )),
        }
    }
    for &r in &roots {
        if cold.contains(&r) {
            let f = &graph.fns[r];
            report.push(Diag::new(
                "hotpath/conflict",
                &f.file,
                f.line,
                format!("`{}` is annotated both mtm-hot and mtm-cold", f.qual),
            ));
        }
    }

    // 3. Callee-closure from the roots, never descending into cold fns.
    let mut reached: BTreeSet<FnId> = BTreeSet::new();
    let mut queue: Vec<FnId> = Vec::new();
    for &r in &roots {
        if reached.insert(r) {
            queue.push(r);
        }
    }
    let bfs = |reached: &mut BTreeSet<FnId>, queue: &mut Vec<FnId>| {
        while let Some(f) = queue.pop() {
            for &c in &graph.callees[f] {
                if !cold.contains(&c) && reached.insert(c) {
                    queue.push(c);
                }
            }
        }
    };
    bfs(&mut reached, &mut queue);

    // 4. Closure seams, to a fixpoint: a closure whose receiving callee
    //    is hot runs hot even when its textual owner does not — scan its
    //    body and keep walking the calls it makes.
    let seams = graph.closure_seams();
    let mut fired: BTreeSet<usize> = BTreeSet::new();
    loop {
        let mut changed = false;
        for (si, seam) in seams.iter().enumerate() {
            if fired.contains(&si) || reached.contains(&seam.owner) {
                continue;
            }
            if seam.callees.iter().any(|c| reached.contains(c)) {
                fired.insert(si);
                changed = true;
                for t in graph.calls_in(&seam.body) {
                    if !cold.contains(&t) && reached.insert(t) {
                        queue.push(t);
                    }
                }
                bfs(&mut reached, &mut queue);
            }
        }
        if !changed {
            break;
        }
    }
    summary.reached = reached.len();

    // 5. Scan and adjudicate. Reached fns first (FnId order is
    //    crate/file order), then fired seams attributed to their owner.
    for &id in &reached {
        let f = &graph.fns[id];
        let mut sites = Vec::new();
        scan_sites(&f.body, &mut sites);
        adjudicate(
            &graph.units[id],
            &f.file,
            f.line,
            f.end_line,
            &f.qual,
            sites,
            allows,
            counts,
            &mut summary,
        );
    }
    for (si, seam) in seams.iter().enumerate() {
        if !fired.contains(&si) {
            continue;
        }
        let owner = &graph.fns[seam.owner];
        let mut sites = Vec::new();
        scan_sites(&seam.body, &mut sites);
        adjudicate(
            &graph.units[seam.owner],
            &owner.file,
            owner.line,
            owner.end_line,
            &format!("{} (closure)", owner.qual),
            sites,
            allows,
            counts,
            &mut summary,
        );
    }
    summary
}

/// Suppress sites covered by an `alloc` allow; charge the rest.
#[allow(clippy::too_many_arguments)]
fn adjudicate(
    unit: &str,
    file: &str,
    fn_line: usize,
    fn_end: usize,
    in_fn: &str,
    sites: Vec<(usize, String)>,
    allows: &mut [Allow],
    counts: &mut BTreeMap<String, SiteCounts>,
    summary: &mut HotSummary,
) {
    for (line, what) in sites {
        if let Some(a) = allows
            .iter_mut()
            .find(|a| taint::allow_covers(a, ALLOC_KEY, file, line, fn_line, fn_end))
        {
            a.used = true;
            continue;
        }
        counts.entry(unit.to_string()).or_default().alloc_hot += 1;
        summary.sites.push(HotSite {
            unit: unit.to_string(),
            file: file.to_string(),
            line,
            what,
            in_fn: in_fn.to_string(),
        });
    }
}

/// Scan token trees for allocation/lock/IO sites, skipping
/// strict-invariants-gated statements like the panic-path scan does.
fn scan_sites(trees: &[Tree], out: &mut Vec<(usize, String)>) {
    let tok_at = |i: usize| -> Option<&Tok> { trees.get(i).and_then(Tree::tok) };
    let mut i = 0usize;
    while i < trees.len() {
        // `#[cfg(feature = "strict-invariants")] <statement>` is the
        // assertion layer: skip the attribute and its statement.
        if tok_at(i).is_some_and(|t| t.is_punct("#")) {
            if let Some(Tree::Group(attr)) = trees.get(i + 1) {
                if attr.delim == Delim::Bracket && crate::analyze::attr_is_strict_gate(attr) {
                    i += 2;
                    while i < trees.len() {
                        match &trees[i] {
                            Tree::Tok(t) if t.is_punct(";") => {
                                i += 1;
                                break;
                            }
                            Tree::Group(g) if g.delim == Delim::Brace => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    continue;
                }
            }
        }
        match &trees[i] {
            Tree::Group(g) => scan_sites(&g.trees, out),
            Tree::Tok(tok) if tok.kind == TokKind::Ident => {
                let name = tok.text.as_str();
                let next_paren =
                    matches!(trees.get(i + 1), Some(Tree::Group(g)) if g.delim == Delim::Paren);
                let next_bang = tok_at(i + 1).is_some_and(|t| t.is_punct("!"));
                let prev = i.checked_sub(1).and_then(|j| trees[j].tok());
                if next_bang && SITE_MACROS.contains(&name) {
                    out.push((tok.line, describe_macro(name)));
                } else if next_paren && prev.is_some_and(|p| p.is_punct(".")) {
                    if SITE_METHODS.contains(&name) {
                        out.push((tok.line, describe_method(name)));
                    }
                } else if next_paren && prev.is_some_and(|p| p.is_punct("::")) {
                    let ty = i
                        .checked_sub(2)
                        .and_then(|j| trees[j].tok())
                        .filter(|t| t.kind == TokKind::Ident);
                    if let Some(ty) = ty {
                        if SITE_QUALS.contains(&(ty.text.as_str(), name)) {
                            out.push((tok.line, format!("`{}::{name}` allocates", ty.text)));
                        }
                    }
                }
            }
            Tree::Tok(_) => {}
        }
        i += 1;
    }
}

fn describe_macro(name: &str) -> String {
    match name {
        "vec" | "format" => format!("`{name}!` allocates"),
        _ => format!("`{name}!` does IO"),
    }
}

fn describe_method(name: &str) -> String {
    match name {
        "lock" => "`.lock()` blocks".to_string(),
        "write_all" | "flush" | "read_to_string" | "read_to_end" => {
            format!("`.{name}()` does IO")
        }
        _ => format!("`.{name}(…)` may allocate"),
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze::analyze_source;

    #[test]
    fn hot_root_flags_transitive_allocation() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-hot: inner-loop
fn hot() { helper(); }
fn helper() { let mut v = Vec::new(); v.push(1); }
fn unreached() { let _ = Vec::new(); }
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        // `Vec::new` + `.push(` in helper; `unreached` is not charged.
        assert_eq!(a.counts["crates/fixture"].alloc_hot, 2);
        assert_eq!(a.hot.roots.len(), 1);
        assert_eq!(a.hot.roots[0].0, "inner-loop");
        assert!(a.hot.sites.iter().all(|s| s.line == 4));
    }

    #[test]
    fn alloc_allow_suppresses_and_counts_as_used() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-hot: inner-loop
fn hot(out: &mut Vec<u32>) {
    // mtm-allow: alloc -- amortized append, capacity plateaus
    out.push(1);
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert!(a.counts.is_empty(), "{:?}", a.counts);
    }

    #[test]
    fn stale_hot_and_cold_annotations_are_errors() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-hot: detached
static X: u32 = 0;

struct S;

// mtm-cold: detached too
static Y: u32 = 0;
static Z: u32 = 0;

fn far_away() {}
"#,
        );
        let rendered = a.report.render();
        assert_eq!(rendered.matches("hotpath/stale").count(), 2, "{rendered}");
    }

    #[test]
    fn cold_cut_stops_the_walk() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-hot: inner-loop
fn hot() { per_trial_setup(); }
// mtm-cold: one setup per trial, allocates by design
fn per_trial_setup() { let _ = Vec::new(); format!("x"); }
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert!(a.counts.is_empty(), "{:?}", a.counts);
    }

    #[test]
    fn closure_defined_cold_but_invoked_hot_is_caught() {
        // `driver` is never hot, but the closure it builds is handed to
        // the hot `apply`, so its `format!` (and the allocation inside
        // the function the closure calls) must be charged.
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-hot: inner-loop
fn apply(f: impl Fn() -> String) { let _ = f(); }
fn driver() { apply(|| label(7)); }
fn label(x: u32) -> String { format!("{x}") }
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].alloc_hot, 1);
        assert_eq!(a.hot.sites[0].line, 5);
        assert!(a.hot.sites[0].in_fn.contains("label"), "{:?}", a.hot.sites);
    }

    #[test]
    fn closure_body_sites_attribute_to_the_owner() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-hot: inner-loop
fn apply(f: impl Fn() -> String) { let _ = f(); }
fn driver() { apply(|| format!("inline")); }
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].alloc_hot, 1);
        assert!(
            a.hot.sites[0].in_fn.contains("driver") && a.hot.sites[0].in_fn.contains("closure"),
            "{:?}",
            a.hot.sites
        );
    }

    #[test]
    fn trait_seam_resolves_by_bare_name() {
        // A hot generic loop calling `r.record(…)` must reach every
        // workspace `record` impl — the conservative trait-seam rule.
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
trait Rec { fn record(&mut self, x: u32); }
struct Mem { xs: Vec<u32> }
impl Rec for Mem {
    fn record(&mut self, x: u32) { self.xs.push(x); }
}
// mtm-hot: inner-loop
fn hot<R: Rec>(r: &mut R) { r.record(1); }
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].alloc_hot, 1);
        assert!(a.hot.sites[0].in_fn.contains("record"), "{:?}", a.hot.sites);
    }

    #[test]
    fn with_capacity_and_into_are_not_sites() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-hot: inner-loop
fn hot(n: usize) -> Vec<u32> {
    let v: Vec<u32> = Vec::with_capacity(n);
    let w: u64 = 3u32.into();
    let _ = w;
    v
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert!(a.counts.is_empty(), "{:?}", a.counts);
    }

    #[test]
    fn strict_invariant_guards_are_skipped() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
// mtm-hot: inner-loop
fn hot(xs: &[f64]) {
    #[cfg(feature = \"strict-invariants\")]
    assert_finite(&format!(\"hot {}\", xs.len()));
    let _ = xs;
}
fn assert_finite(_s: &str) {}
",
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert!(a.counts.is_empty(), "{:?}", a.counts);
    }

    #[test]
    fn malformed_hot_key_is_reported() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
// mtm-hot:
fn hot() {}
",
        );
        assert!(
            a.report.render().contains("annotation/malformed"),
            "{}",
            a.report.render()
        );
    }
}
