//! Interprocedural lock-region analysis.
//!
//! The serve daemon funnels every request through one dispatch mutex;
//! its p99 poll-latency gate only holds if nothing slow ever runs while
//! that lock is held — a property TSan cannot check, because it only
//! sees dynamically exercised paths. This pass makes held-lock hygiene
//! a static, ratcheted property:
//!
//! * **Acquisitions** are `.lock()` / `.read()` / `.write()` calls with
//!   empty argument lists, plus calls to functions annotated
//!   `// mtm-lock: <name>` (a *lock function* like serve's `lock_core`,
//!   whose return value is the guard). Locks are unified by name: a
//!   line-level `mtm-lock: <name>` directly above (or on) the
//!   acquisition line wins, then the receiver identifier
//!   (`self.core.lock()` → `core`), then an anonymous `file:line` name.
//! * **Regions** are the token span where the guard is live: for a
//!   statement-initial `let`, from the acquisition to an explicit
//!   same-level `drop(<binding>)` or the end of the enclosing scope;
//!   otherwise (match/if-let/while-let heads, temporaries) to the end
//!   of the statement. Match arms and early returns are covered by
//!   over-approximation — the region never ends early at a `return`.
//! * Each region is scanned — textually and through every function
//!   reachable from calls made inside it ([`CallGraph`] edges) — for
//!   three lints:
//!   1. **blocking-under-lock**: file/socket IO, `flush`/`sync_all`,
//!      thread `join`, sleeps, IO macros, or reaching an `mtm-hot` root
//!      (simulator/optimizer work) while the guard is held. Charged to
//!      the `[blocking_under_lock]` ratchet table unless sanctioned by
//!      `// mtm-allow: lock -- <reason>` at the acquisition or at the
//!      blocking site.
//!   2. **lock-order cycles**: every acquisition inside a held region
//!      adds an acquired-while-holding edge; any cycle in that graph
//!      (self-cycles = double-lock included) charges each participating
//!      edge to `[lock_order]`. Cycles are never allow-suppressible —
//!      only ratchet-budgeted.
//!   3. **guard-across-wait**: a guard other than the condvar's own
//!      held across `Condvar::wait*` is a hard `lock/guard-across-wait`
//!      diagnostic (a wait releases only its own mutex).
//!
//! Soundness caveats (see DESIGN.md §15): guards moved into structs or
//! returned from non-annotated functions escape the analysis; regions
//! are syntactic over-approximations (a guard bound by a statement-
//! initial `let` is assumed live to the end of the scope even when the
//! borrow checker would end it sooner); lock identity is name-based, so
//! two mutexes that share a receiver name are conflated (prefer
//! explicit `mtm-lock:` names). A `drop(<binding>)` nested inside a
//! conditional arm does **not** end the region — only a same-level drop
//! does.
//!
//! Stale annotations are errors: an `mtm-lock:` comment that no longer
//! sits above an acquisition or a function signature reports
//! `lockregion/stale`; unused `mtm-allow: lock` annotations are
//! reported `annotation/stale` by the shared allow bookkeeping.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{CrateAst, Delim, Tok, TokKind, Tree};
use crate::callgraph::{CallGraph, FnId};
use crate::diag::{Diag, Report};
use crate::ratchet::SiteCounts;
use crate::taint::{self, Allow};

/// The allow key adjudicating this pass's findings.
pub const LOCK_KEY: &str = "lock";

/// Guard-producing methods: `m.lock()`, `rw.read()`, `rw.write()`.
/// Only empty argument lists qualify — `.read(buf)`/`.write(buf)` are
/// IO, not acquisitions (and deliberately not flagged as blocking
/// either: too noisy against in-memory readers).
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// `Condvar` wait entry points. The first identifier in the argument
/// list names the guard being handed over.
const WAIT_METHODS: &[&str] = &["wait", "wait_while", "wait_timeout", "wait_timeout_while"];

/// Method calls that block: file/socket IO, thread join. `join` only
/// counts with an empty argument list (`handle.join()`), so string
/// `slice.join(", ")` stays clean.
const BLOCKING_METHODS: &[&str] = &[
    "flush",
    "sync_all",
    "sync_data",
    "write_all",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "read_line",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "open",
];

/// Macros that perform IO while formatting.
const BLOCKING_MACROS: &[&str] = &["println", "eprintln", "print", "eprint"];

/// `Type::method` / `module::fn` paths that block.
const BLOCKING_QUALS: &[(&str, &str)] = &[
    ("File", "open"),
    ("File", "create"),
    ("OpenOptions", "new"),
    ("fs", "read"),
    ("fs", "write"),
    ("fs", "read_to_string"),
    ("fs", "read_dir"),
    ("fs", "copy"),
    ("fs", "rename"),
    ("fs", "metadata"),
    ("fs", "remove_file"),
    ("fs", "remove_dir_all"),
    ("fs", "create_dir_all"),
    ("thread", "sleep"),
    ("TcpListener", "bind"),
    ("TcpStream", "connect"),
    ("UnixListener", "bind"),
    ("UnixStream", "connect"),
];

/// What the lock-region pass found (also feeds `analyze --locks`).
#[derive(Debug, Default)]
pub struct LockSummary {
    /// Every named lock seen, sorted.
    pub locks: Vec<String>,
    /// Guard regions analyzed.
    pub regions: usize,
    /// Unsuppressed blocking-under-lock sites, in deterministic order.
    pub sites: Vec<LockSite>,
    /// Acquired-while-holding edges (deduplicated, sorted).
    pub edges: Vec<LockEdge>,
    /// Rendered lock-order cycles (empty when the graph is acyclic).
    pub cycles: Vec<String>,
}

/// One unsuppressed blocking site inside a held-lock region. The
/// `file:line` anchor is the region's *acquisition* (the unit of
/// sanctioning); `what` names the actual blocking operation.
#[derive(Debug)]
pub struct LockSite {
    /// Ratchet unit charged for the site.
    pub unit: String,
    /// File containing the acquisition.
    pub file: String,
    /// Line of the acquisition anchoring the region.
    pub line: usize,
    /// Logical lock name.
    pub lock: String,
    /// What blocks, and where, if reached interprocedurally.
    pub what: String,
    /// Qualified function containing the region.
    pub in_fn: String,
}

/// One acquired-while-holding edge in the lock-order graph.
#[derive(Debug)]
pub struct LockEdge {
    /// Lock already held.
    pub holder: String,
    /// Lock acquired while holding it.
    pub acquired: String,
    /// File of the inner acquisition (or the region anchor when the
    /// edge comes from a reached lock function).
    pub file: String,
    /// Line of the inner acquisition.
    pub line: usize,
    /// Ratchet unit of the holding region.
    pub unit: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FindKind {
    Blocking,
    Wait,
}

/// A pre-adjudication finding. `anchor_*` is the acquisition site (and
/// its function span) for allow coverage; `site_*` is the blocking
/// operation itself, so a line-level allow at either location covers.
#[derive(Debug)]
struct Finding {
    kind: FindKind,
    unit: String,
    lock: String,
    what: String,
    in_fn: String,
    anchor_file: String,
    anchor_line: usize,
    anchor_span: (usize, usize),
    site_file: String,
    site_line: usize,
    site_span: (usize, usize),
}

/// Per-function facts, computed once and consulted for every region
/// that reaches the function.
#[derive(Debug, Default, Clone)]
struct RawFacts {
    /// `(line, description)` blocking sites.
    blocking: Vec<(usize, String)>,
    /// `(line, lock name)` acquisitions.
    acqs: Vec<(usize, String)>,
    /// `(line, first argument identifier)` condvar waits.
    waits: Vec<(usize, Option<String>)>,
}

struct EdgeInfo {
    file: String,
    line: usize,
    unit: String,
}

struct Ctx<'a> {
    id: FnId,
    unit: &'a str,
    file: &'a str,
    fn_line: usize,
    fn_end: usize,
    qual: &'a str,
}

struct Pass<'a> {
    graph: &'a CallGraph,
    /// `(file, acquisition line)` → explicit lock name.
    line_names: BTreeMap<(String, usize), String>,
    /// Bare function name → lock name, for `mtm-lock:` lock functions.
    lockfn_names: BTreeMap<String, String>,
    /// FnId → lock name, same functions (for reachability edges).
    lockfn_by_id: BTreeMap<FnId, String>,
    /// Well-formed `mtm-hot` roots — hot work must not run under locks.
    hot_roots: BTreeSet<FnId>,
    /// Per-function facts, indexed by FnId.
    facts: Vec<RawFacts>,
    findings: Vec<Finding>,
    edges: BTreeMap<(String, String), EdgeInfo>,
    regions: usize,
    locks: BTreeSet<String>,
}

/// Run the pass: resolve `mtm-lock` annotations, find guard regions,
/// scan them (and everything they reach) for the three lints, and
/// charge unsanctioned findings to `[blocking_under_lock]` /
/// `[lock_order]`.
pub fn run(
    graph: &CallGraph,
    crates: &[CrateAst],
    allows: &mut Vec<Allow>,
    report: &mut Report,
    counts: &mut BTreeMap<String, SiteCounts>,
) -> LockSummary {
    let mut pass = Pass {
        graph,
        line_names: BTreeMap::new(),
        lockfn_names: BTreeMap::new(),
        lockfn_by_id: BTreeMap::new(),
        hot_roots: BTreeSet::new(),
        facts: Vec::new(),
        findings: Vec::new(),
        edges: BTreeMap::new(),
        regions: 0,
        locks: BTreeSet::new(),
    };

    // 1. Syntactic acquisition lines per file, so line-level `mtm-lock`
    //    annotations can bind to the site directly below (or beside).
    let mut acq_lines: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for f in &graph.fns {
        let lines = acq_lines.entry(f.file.clone()).or_default();
        collect_guard_lines(&f.body, lines);
    }

    // 2. Annotation collection and resolution. Line-level binding (an
    //    acquisition on the next or same line) wins over fn-level; a
    //    comment matching neither is stale — a detached name silently
    //    un-names a lock.
    let find_fn = |file: &str, line: usize| -> Option<FnId> {
        graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.line > line && f.line - line <= 3)
            .min_by_key(|(_, f)| f.line)
            .map(|(id, _)| id)
    };
    for krate in crates {
        for file in &krate.files {
            for c in &file.comments {
                let text = c.text.trim();
                if let Some(rest) = text.strip_prefix("mtm-hot:") {
                    if !rest.trim().is_empty() {
                        if let Some(id) = find_fn(&file.rel, c.line) {
                            pass.hot_roots.insert(id);
                        }
                    }
                    continue;
                }
                let Some(rest) = text.strip_prefix("mtm-lock:") else {
                    continue;
                };
                let name = rest.trim().to_string();
                if name.is_empty() {
                    report.push(Diag::new(
                        "annotation/malformed",
                        &file.rel,
                        c.line,
                        "mtm-lock annotation needs a `<name>` for the lock",
                    ));
                    continue;
                }
                let sites = acq_lines.get(&file.rel);
                let site = sites.and_then(|s| {
                    [c.line + 1, c.line]
                        .into_iter()
                        .find(|line| s.contains(line))
                });
                if let Some(line) = site {
                    pass.line_names
                        .insert((file.rel.clone(), line), name.clone());
                } else if let Some(id) = find_fn(&file.rel, c.line) {
                    pass.lockfn_names
                        .insert(graph.fns[id].name.clone(), name.clone());
                    pass.lockfn_by_id.insert(id, name);
                } else {
                    report.push(Diag::new(
                        "lockregion/stale",
                        &file.rel,
                        c.line,
                        format!(
                            "mtm-lock annotation (`{name}`) matches no lock acquisition \
                             below it and no function signature — reattach or remove it"
                        ),
                    ));
                }
            }
        }
    }

    // 3. Per-function facts (consulted for every region reaching the
    //    function), then the region scan itself.
    for f in &graph.fns {
        let mut raw = RawFacts::default();
        pass.collect_facts(&f.body, &f.file, &mut raw);
        pass.facts.push(raw);
    }
    for (id, f) in graph.fns.iter().enumerate() {
        let ctx = Ctx {
            id,
            unit: &graph.units[id],
            file: &f.file,
            fn_line: f.line,
            fn_end: f.end_line,
            qual: &f.qual,
        };
        pass.scan_scope(&f.body, &ctx);
    }

    // 4. Adjudicate findings: an allow at the acquisition anchor or at
    //    the blocking site suppresses; the rest charge the ratchet
    //    (blocking) or report a hard diagnostic (guard-across-wait).
    let mut summary = LockSummary {
        locks: pass.locks.iter().cloned().collect(),
        regions: pass.regions,
        ..LockSummary::default()
    };
    for f in &pass.findings {
        let covered = allows.iter_mut().find(|a| {
            taint::allow_covers(
                a,
                LOCK_KEY,
                &f.anchor_file,
                f.anchor_line,
                f.anchor_span.0,
                f.anchor_span.1,
            ) || taint::allow_covers(
                a,
                LOCK_KEY,
                &f.site_file,
                f.site_line,
                f.site_span.0,
                f.site_span.1,
            )
        });
        if let Some(a) = covered {
            a.used = true;
            continue;
        }
        match f.kind {
            FindKind::Blocking => {
                counts
                    .entry(f.unit.clone())
                    .or_default()
                    .blocking_under_lock += 1;
                summary.sites.push(LockSite {
                    unit: f.unit.clone(),
                    file: f.anchor_file.clone(),
                    line: f.anchor_line,
                    lock: f.lock.clone(),
                    what: f.what.clone(),
                    in_fn: f.in_fn.clone(),
                });
            }
            FindKind::Wait => report.push(Diag::new(
                "lock/guard-across-wait",
                &f.anchor_file,
                f.anchor_line,
                format!(
                    "guard of `{}` is {} — a wait releases only its own mutex; \
                     drop the guard first",
                    f.lock, f.what
                ),
            )),
        }
    }

    // 5. Lock-order cycles: an edge closes a cycle when its target can
    //    reach back to its source (self-edges trivially do). Each
    //    closing edge charges `[lock_order]` to the holding region's
    //    unit — cycles are never allow-suppressed.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (holder, acquired) in pass.edges.keys() {
        adj.entry(holder.as_str()).or_default().insert(acquired);
    }
    let reach = |from: &str| -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: Vec<&str> = vec![from];
        while let Some(n) = queue.pop() {
            if let Some(next) = adj.get(n) {
                for &m in next {
                    if seen.insert(m) {
                        queue.push(m);
                    }
                }
            }
        }
        seen
    };
    let mut cyclic_edges: Vec<(&str, &str, &EdgeInfo)> = Vec::new();
    for ((holder, acquired), info) in &pass.edges {
        let closes = holder == acquired || reach(acquired).contains(holder.as_str());
        if closes {
            counts.entry(info.unit.clone()).or_default().lock_order += 1;
            cyclic_edges.push((holder, acquired, info));
        }
    }
    // Group the closing edges into strongly-connected components for
    // the report: every node on a cycle shares mutual reachability.
    let mut groups: BTreeMap<&str, Vec<&(&str, &str, &EdgeInfo)>> = BTreeMap::new();
    for e in &cyclic_edges {
        let fwd = reach(e.0);
        let root = std::iter::once(e.0)
            .chain(
                fwd.iter()
                    .copied()
                    .filter(|n| reach(n).contains(e.0) || *n == e.0),
            )
            .min()
            .unwrap_or(e.0);
        groups.entry(root).or_default().push(e);
    }
    for (_, edges) in groups {
        let members: BTreeSet<&str> = edges.iter().flat_map(|e| [e.0, e.1]).collect();
        let rendered: Vec<String> = edges
            .iter()
            .map(|(h, a, info)| {
                if h == a {
                    format!(
                        "`{h}` re-acquired (double-lock) at {}:{}",
                        info.file, info.line
                    )
                } else {
                    format!("`{h}` -> `{a}` at {}:{}", info.file, info.line)
                }
            })
            .collect();
        summary.cycles.push(format!(
            "cycle [{}]: {}",
            members.into_iter().collect::<Vec<_>>().join(", "),
            rendered.join("; ")
        ));
    }
    for ((holder, acquired), info) in &pass.edges {
        summary.edges.push(LockEdge {
            holder: holder.clone(),
            acquired: acquired.clone(),
            file: info.file.clone(),
            line: info.line,
            unit: info.unit.clone(),
        });
    }
    summary
}

impl Pass<'_> {
    /// Walk one lexical scope, tracking statement starts, and open a
    /// region for every acquisition found at this level. Every nested
    /// group is itself scanned as a scope (closure bodies, match arms,
    /// call arguments), so nested acquisitions get their own regions.
    fn scan_scope(&mut self, trees: &[Tree], ctx: &Ctx) {
        let mut i = 0usize;
        let mut stmt_start = 0usize;
        while i < trees.len() {
            if let Some(next) = skip_strict_gate(trees, i) {
                i = next;
                stmt_start = next;
                continue;
            }
            match &trees[i] {
                Tree::Tok(t) if t.is_punct(";") => {
                    stmt_start = i + 1;
                }
                Tree::Group(g) => {
                    self.scan_scope(&g.trees, ctx);
                    // A brace group ends a statement at this level too:
                    // `if`/`for`/`while`/`match` statements carry no `;`.
                    // A brace that is mid-expression (struct literal,
                    // match tail) is followed by `;` or an operator, and
                    // the `;` arm resets again before the next statement.
                    if g.delim == Delim::Brace {
                        stmt_start = i + 1;
                    }
                }
                Tree::Tok(t) if t.kind == TokKind::Ident => {
                    if let Some((line, lock)) = self.acq_at(trees, i, ctx.file) {
                        self.region(trees, i, stmt_start, line, &lock, ctx);
                    }
                }
                Tree::Tok(_) => {}
            }
            i += 1;
        }
    }

    /// Is `trees[i]` a guard acquisition (or lock-function call)? On a
    /// hit, resolve the lock's name: explicit line annotation, then
    /// receiver identifier, then anonymous `file:line`.
    fn acq_at(&self, trees: &[Tree], i: usize, file: &str) -> Option<(usize, String)> {
        let tok = trees.get(i).and_then(Tree::tok)?;
        if tok.kind != TokKind::Ident {
            return None;
        }
        let paren = match trees.get(i + 1) {
            Some(Tree::Group(g)) if g.delim == Delim::Paren => g,
            _ => return None,
        };
        let prev = i.checked_sub(1).and_then(|j| trees[j].tok());
        let after_dot = prev.is_some_and(|p| p.is_punct("."));
        if after_dot && paren.trees.is_empty() && GUARD_METHODS.contains(&tok.text.as_str()) {
            let name = self
                .line_names
                .get(&(file.to_string(), tok.line))
                .cloned()
                .or_else(|| {
                    i.checked_sub(2)
                        .and_then(|j| trees[j].tok())
                        .filter(|t| t.kind == TokKind::Ident && t.text != "self")
                        .map(|t| t.text.clone())
                })
                .unwrap_or_else(|| format!("{file}:{}", tok.line));
            return Some((tok.line, name));
        }
        if let Some(name) = self.lockfn_names.get(&tok.text) {
            return Some((tok.line, name.clone()));
        }
        None
    }

    /// Delimit the guard's live region and process it. `i` indexes the
    /// acquisition identifier, `stmt_start` the statement it sits in.
    fn region(
        &mut self,
        trees: &[Tree],
        i: usize,
        stmt_start: usize,
        acq_line: usize,
        lock: &str,
        ctx: &Ctx,
    ) {
        // The binding, when the statement is a `let` at this level.
        let let_pos = (stmt_start..i).find(|&j| trees[j].tok().is_some_and(|t| t.is_ident("let")));
        let binding = let_pos.and_then(|lp| {
            let eq = (lp..i).find(|&j| trees[j].tok().is_some_and(|t| t.is_punct("=")))?;
            first_binding_ident(&trees[lp + 1..eq])
        });
        let after = i + 2;
        let end = match (let_pos, &binding) {
            // Statement-initial `let`: the guard outlives the
            // statement — until a same-level `drop(binding)` or the
            // end of the scope. (A drop nested in a conditional arm
            // does not count; see the module docs.)
            (Some(lp), Some(b)) if lp == stmt_start => {
                find_drop(trees, after, b).unwrap_or(trees.len())
            }
            // Mid-statement `let` (if-let / while-let) or a guard
            // temporary (match head, call argument): live to the end
            // of the statement — the next `;` or the first brace
            // group (the arms / body) at this level.
            _ => stmt_extent(trees, after),
        };
        let slice = &trees[after.min(trees.len())..end.max(after).min(trees.len())];

        self.regions += 1;
        self.locks.insert(lock.to_string());

        let mut raw = RawFacts::default();
        self.collect_facts(slice, ctx.file, &mut raw);

        let anchor =
            |kind: FindKind, what: String, in_fn: &str, site: (&str, usize, (usize, usize))| {
                Finding {
                    kind,
                    unit: ctx.unit.to_string(),
                    lock: lock.to_string(),
                    what,
                    in_fn: in_fn.to_string(),
                    anchor_file: ctx.file.to_string(),
                    anchor_line: acq_line,
                    anchor_span: (ctx.fn_line, ctx.fn_end),
                    site_file: site.0.to_string(),
                    site_line: site.1,
                    site_span: site.2,
                }
            };

        let own_span = (ctx.fn_line, ctx.fn_end);
        for (line, what) in &raw.blocking {
            self.findings.push(anchor(
                FindKind::Blocking,
                format!("{what} while `{lock}` is held"),
                ctx.qual,
                (ctx.file, *line, own_span),
            ));
        }
        for (line, name) in &raw.acqs {
            self.add_edge(lock, name, ctx.file, *line, ctx.unit);
        }
        for (line, arg) in &raw.waits {
            let own_guard = binding.is_some() && arg.as_deref() == binding.as_deref();
            if !own_guard {
                self.findings.push(anchor(
                    FindKind::Wait,
                    format!("held across `Condvar::wait` at line {line}"),
                    ctx.qual,
                    (ctx.file, *line, own_span),
                ));
            }
        }

        // Interprocedural: everything reachable from calls made while
        // the guard is held. Waits are masked first so the bare name
        // `wait` cannot fan out to unrelated workspace functions.
        let mut masked = slice.to_vec();
        mask_waits(&mut masked);
        let calls: Vec<FnId> = self.graph.calls_in(&masked).into_iter().collect();
        let mut reached = self.graph.reachable_from(&calls);
        reached.remove(&ctx.id);
        let mut found: Vec<Finding> = Vec::new();
        for id in reached {
            let g = &self.graph.fns[id];
            let span = (g.line, g.end_line);
            if let Some(name) = self.lockfn_by_id.get(&id) {
                self.add_edge(lock, &name.clone(), ctx.file, acq_line, ctx.unit);
            }
            if self.hot_roots.contains(&id) {
                found.push(anchor(
                    FindKind::Blocking,
                    format!(
                        "hot-path root `{}` (mtm-hot) is reachable while `{lock}` is held",
                        g.qual
                    ),
                    ctx.qual,
                    (&g.file, g.line, span),
                ));
            }
            let facts = self.facts[id].clone();
            for (line, what) in &facts.blocking {
                found.push(anchor(
                    FindKind::Blocking,
                    format!(
                        "{what} in `{}` ({}:{line}) while `{lock}` is held",
                        g.qual, g.file
                    ),
                    ctx.qual,
                    (&g.file, *line, span),
                ));
            }
            for (line, name) in &facts.acqs {
                self.add_edge(lock, name, &g.file.clone(), *line, ctx.unit);
            }
            for (line, _) in &facts.waits {
                found.push(anchor(
                    FindKind::Wait,
                    format!(
                        "held across `Condvar::wait` in `{}` ({}:{line})",
                        g.qual, g.file
                    ),
                    ctx.qual,
                    (&g.file, *line, span),
                ));
            }
        }
        self.findings.extend(found);
    }

    fn add_edge(&mut self, holder: &str, acquired: &str, file: &str, line: usize, unit: &str) {
        self.edges
            .entry((holder.to_string(), acquired.to_string()))
            .or_insert(EdgeInfo {
                file: file.to_string(),
                line,
                unit: unit.to_string(),
            });
    }

    /// Deep token walk collecting acquisitions, waits, and blocking
    /// sites, skipping strict-invariants-gated statements.
    fn collect_facts(&self, trees: &[Tree], file: &str, out: &mut RawFacts) {
        let tok_at = |i: usize| -> Option<&Tok> { trees.get(i).and_then(Tree::tok) };
        let mut i = 0usize;
        while i < trees.len() {
            if let Some(next) = skip_strict_gate(trees, i) {
                i = next;
                continue;
            }
            match &trees[i] {
                Tree::Group(g) => self.collect_facts(&g.trees, file, out),
                Tree::Tok(tok) if tok.kind == TokKind::Ident => {
                    let name = tok.text.as_str();
                    if let Some((line, lock)) = self.acq_at(trees, i, file) {
                        out.acqs.push((line, lock));
                        i += 1;
                        continue;
                    }
                    let paren = match trees.get(i + 1) {
                        Some(Tree::Group(g)) if g.delim == Delim::Paren => Some(g),
                        _ => None,
                    };
                    let next_bang = tok_at(i + 1).is_some_and(|t| t.is_punct("!"));
                    let prev = i.checked_sub(1).and_then(|j| trees[j].tok());
                    let after_dot = prev.is_some_and(|p| p.is_punct("."));
                    let after_colons = prev.is_some_and(|p| p.is_punct("::"));
                    if next_bang && BLOCKING_MACROS.contains(&name) {
                        out.blocking.push((tok.line, format!("`{name}!` does IO")));
                    } else if let (true, Some(g)) = (after_dot, paren) {
                        if WAIT_METHODS.contains(&name) && !g.trees.is_empty() {
                            out.waits.push((tok.line, first_ident(&g.trees)));
                            // Recurse into the argument list ourselves
                            // (closures passed to wait_while etc.), then
                            // skip past it so it is not double-scanned.
                            self.collect_facts(&g.trees, file, out);
                            i += 2;
                            continue;
                        }
                        if BLOCKING_METHODS.contains(&name) {
                            out.blocking
                                .push((tok.line, format!("`.{name}(…)` does blocking IO")));
                        } else if name == "join" && g.trees.is_empty() {
                            out.blocking
                                .push((tok.line, "`.join()` blocks on a thread".to_string()));
                        }
                    } else if after_colons && paren.is_some() {
                        let ty = i
                            .checked_sub(2)
                            .and_then(|j| trees[j].tok())
                            .filter(|t| t.kind == TokKind::Ident);
                        if let Some(ty) = ty {
                            if BLOCKING_QUALS.contains(&(ty.text.as_str(), name)) {
                                let what = if ty.text == "thread" {
                                    "`thread::sleep` blocks".to_string()
                                } else {
                                    format!("`{}::{name}` does blocking IO", ty.text)
                                };
                                out.blocking.push((tok.line, what));
                            }
                        }
                    }
                }
                Tree::Tok(_) => {}
            }
            i += 1;
        }
    }
}

/// Deep walk recording the lines of syntactic guard acquisitions
/// (`.lock()` / `.read()` / `.write()` with empty argument lists), so
/// line-level `mtm-lock` annotations can bind before names resolve.
fn collect_guard_lines(trees: &[Tree], out: &mut BTreeSet<usize>) {
    for (i, t) in trees.iter().enumerate() {
        match t {
            Tree::Group(g) => collect_guard_lines(&g.trees, out),
            Tree::Tok(tok)
                if tok.kind == TokKind::Ident
                    && GUARD_METHODS.contains(&tok.text.as_str())
                    && i.checked_sub(1)
                        .and_then(|j| trees[j].tok())
                        .is_some_and(|p| p.is_punct("."))
                    && matches!(
                        trees.get(i + 1),
                        Some(Tree::Group(g)) if g.delim == Delim::Paren && g.trees.is_empty()
                    ) =>
            {
                out.insert(tok.line);
            }
            _ => {}
        }
    }
}

/// Skip `#[cfg(feature = "strict-invariants")] <statement>` — the
/// assertion layer is compiled out of release builds. Returns the index
/// just past the gated statement, or `None` when `i` is not a gate.
fn skip_strict_gate(trees: &[Tree], i: usize) -> Option<usize> {
    if !trees
        .get(i)
        .and_then(Tree::tok)
        .is_some_and(|t| t.is_punct("#"))
    {
        return None;
    }
    let Some(Tree::Group(attr)) = trees.get(i + 1) else {
        return None;
    };
    if attr.delim != Delim::Bracket || !crate::analyze::attr_is_strict_gate(attr) {
        return None;
    }
    let mut j = i + 2;
    while j < trees.len() {
        match &trees[j] {
            Tree::Tok(t) if t.is_punct(";") => return Some(j + 1),
            Tree::Group(g) if g.delim == Delim::Brace => return Some(j + 1),
            _ => j += 1,
        }
    }
    Some(j)
}

/// End of the statement containing an acquisition with no outliving
/// binding: the next `;` at this level, or just past the first brace
/// group (match arms, loop body) — whichever comes first.
fn stmt_extent(trees: &[Tree], from: usize) -> usize {
    for j in from..trees.len() {
        match &trees[j] {
            Tree::Tok(t) if t.is_punct(";") => return j,
            Tree::Group(g) if g.delim == Delim::Brace => return j + 1,
            _ => {}
        }
    }
    trees.len()
}

/// First `drop(<binding>)` at this level at index `from` or later.
/// Returns the index of the `drop` identifier.
fn find_drop(trees: &[Tree], from: usize, binding: &str) -> Option<usize> {
    (from..trees.len()).find(|&j| {
        trees[j].tok().is_some_and(|t| t.is_ident("drop"))
            && matches!(
                trees.get(j + 1),
                Some(Tree::Group(g)) if g.delim == Delim::Paren
                    && g.trees.len() == 1
                    && g.trees[0].tok().is_some_and(|t| t.is_ident(binding))
            )
    })
}

/// The bound name in a `let` pattern: the first lowercase (or `_`)
/// identifier, descending into tuple/constructor groups, skipping
/// binding modifiers. `Ok(mut core)` → `core`.
fn first_binding_ident(pattern: &[Tree]) -> Option<String> {
    for t in pattern {
        match t {
            Tree::Tok(tok)
                if tok.kind == TokKind::Ident
                    && !matches!(tok.text.as_str(), "mut" | "ref" | "box")
                    && tok
                        .text
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_') =>
            {
                return Some(tok.text.clone());
            }
            Tree::Group(g) => {
                if let Some(found) = first_binding_ident(&g.trees) {
                    return Some(found);
                }
            }
            _ => {}
        }
    }
    None
}

/// First identifier at the top level of an argument list.
fn first_ident(trees: &[Tree]) -> Option<String> {
    trees.iter().find_map(|t| {
        t.tok()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
    })
}

/// Rename `.wait*(…)` and directly-flagged blocking method identifiers
/// in a cloned region, so the call-graph's conservative bare-name
/// resolution cannot fan out from `cv.wait(guard)` or `file.flush()`
/// into every workspace function sharing the name. Blocking methods are
/// already charged as direct sites — descending into a same-named
/// workspace function would double-report them.
fn mask_waits(trees: &mut [Tree]) {
    let mut i = 0usize;
    while i < trees.len() {
        let masked = trees
            .get(i)
            .and_then(Tree::tok)
            .filter(|t| t.kind == TokKind::Ident)
            .is_some_and(|t| {
                let name = t.text.as_str();
                let after_dot = i
                    .checked_sub(1)
                    .and_then(|j| trees[j].tok())
                    .is_some_and(|p| p.is_punct("."));
                let paren = match trees.get(i + 1) {
                    Some(Tree::Group(g)) if g.delim == Delim::Paren => Some(&g.trees),
                    _ => None,
                };
                after_dot
                    && match paren {
                        Some(args) => {
                            (WAIT_METHODS.contains(&name) && !args.is_empty())
                                || BLOCKING_METHODS.contains(&name)
                                || (name == "join" && args.is_empty())
                        }
                        None => false,
                    }
            });
        match &mut trees[i] {
            Tree::Tok(t) if masked => t.text = "__mtm_masked_call".to_string(),
            Tree::Group(g) => mask_waits(&mut g.trees),
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze::analyze_source;

    #[test]
    fn blocking_io_under_held_guard_is_charged() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn f(m: &Mutex<std::fs::File>) {
    let Ok(g) = m.lock() else { return };
    let _ = g.sync_all();
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].blocking_under_lock, 1);
        assert_eq!(a.lock.sites.len(), 1);
        assert_eq!(a.lock.sites[0].lock, "m");
        assert!(
            a.lock.sites[0].what.contains("sync_all"),
            "{:?}",
            a.lock.sites
        );
        // Anchored at the acquisition, not the blocking call.
        assert_eq!(a.lock.sites[0].line, 4);
    }

    #[test]
    fn dropped_guard_releases_the_region() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn f(m: &Mutex<u32>, file: &std::fs::File) {
    let Ok(g) = m.lock() else { return };
    let _ = *g;
    drop(g);
    let _ = file.sync_all();
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert!(a.counts.is_empty(), "{:?}", a.counts);
        assert_eq!(a.lock.regions, 1);
    }

    #[test]
    fn reached_function_blocking_is_charged_to_the_region() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn f(m: &Mutex<u32>) {
    let Ok(g) = m.lock() else { return };
    helper(*g);
}
fn helper(x: u32) {
    let _ = std::fs::File::open(format!("{x}"));
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].blocking_under_lock, 1);
        assert!(
            a.lock.sites[0].what.contains("helper"),
            "{:?}",
            a.lock.sites
        );
    }

    #[test]
    fn lock_allow_at_the_acquisition_suppresses_the_region() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn f(m: &Mutex<std::fs::File>) {
    // mtm-allow: lock -- the file lock exists to serialize this write
    let Ok(g) = m.lock() else { return };
    let _ = g.sync_all();
    let _ = g.sync_data();
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert!(a.counts.is_empty(), "{:?}", a.counts);
    }

    #[test]
    fn lock_order_cycle_charges_each_closing_edge() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let Ok(ga) = a.lock() else { return };
    let Ok(gb) = b.lock() else { return };
    let _ = (*ga, *gb);
}
fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let Ok(gb) = b.lock() else { return };
    let Ok(ga) = a.lock() else { return };
    let _ = (*ga, *gb);
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].lock_order, 2);
        assert_eq!(a.lock.cycles.len(), 1, "{:?}", a.lock.cycles);
        assert!(
            a.lock.cycles[0].contains("`a` -> `b`"),
            "{:?}",
            a.lock.cycles
        );
    }

    #[test]
    fn double_lock_is_a_self_cycle() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn f(m: &Mutex<u32>) {
    let Ok(g) = m.lock() else { return };
    let Ok(g2) = m.lock() else { return };
    let _ = (*g, *g2);
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].lock_order, 1);
        assert!(
            a.lock.cycles[0].contains("double-lock"),
            "{:?}",
            a.lock.cycles
        );
    }

    #[test]
    fn foreign_guard_across_wait_is_a_hard_diag() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::{Condvar, Mutex};
fn f(m: &Mutex<u32>, other: &Mutex<u32>, cv: &Condvar) {
    let Ok(g) = m.lock() else { return };
    let Ok(o) = other.lock() else { return };
    let _ = (*o, cv.wait(g));
}
"#,
        );
        let rendered = a.report.render();
        // The `other` region holds `o` across `cv.wait(g)`; the `m`
        // region hands its own guard over, which is fine.
        assert_eq!(
            rendered.matches("lock/guard-across-wait").count(),
            1,
            "{rendered}"
        );
        assert!(rendered.contains("`other`"), "{rendered}");
    }

    #[test]
    fn own_guard_wait_loop_is_clean() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::{Condvar, Mutex};
fn f(m: &Mutex<bool>, cv: &Condvar) {
    let Ok(mut g) = m.lock() else { return };
    while !*g {
        g = match cv.wait(g) {
            Ok(next) => next,
            Err(_) => return,
        };
    }
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert!(a.counts.is_empty(), "{:?}", a.counts);
    }

    #[test]
    fn lock_fn_annotation_names_the_callers_region() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::{Mutex, MutexGuard};
struct D { core: Mutex<u32> }
impl D {
    // mtm-lock: core
    fn lock_core(&self) -> MutexGuard<'_, u32> {
        match self.core.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
    fn submit(&self) {
        let g = self.lock_core();
        let _ = std::fs::read_to_string("state");
        let _ = *g;
    }
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].blocking_under_lock, 1);
        assert_eq!(a.lock.sites[0].lock, "core", "{:?}", a.lock.sites);
        assert!(
            a.lock.sites[0].in_fn.contains("submit"),
            "{:?}",
            a.lock.sites
        );
    }

    #[test]
    fn match_bound_guard_outlives_its_statement() {
        // The lock_core idiom inlined: the guard escapes the `match`
        // statement, so blocking after it is still inside the region.
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn f(m: &Mutex<std::fs::File>) {
    let g = match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let _ = g.sync_all();
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].blocking_under_lock, 1);
    }

    #[test]
    fn hot_root_reached_under_lock_is_blocking() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
// mtm-hot: inner-loop
fn step() {}
fn f(m: &Mutex<u32>) {
    let Ok(g) = m.lock() else { return };
    step();
    let _ = *g;
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.counts["crates/fixture"].blocking_under_lock, 1);
        assert!(
            a.lock.sites[0].what.contains("mtm-hot"),
            "{:?}",
            a.lock.sites
        );
    }

    #[test]
    fn stale_lock_annotation_is_an_error() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
// mtm-lock: ghost
static X: u32 = 0;
static Y: u32 = 0;
static Z: u32 = 0;

fn far_away() {}
"#,
        );
        let rendered = a.report.render();
        assert!(rendered.contains("lockregion/stale"), "{rendered}");
        assert!(rendered.contains("`ghost`"), "{rendered}");
    }

    #[test]
    fn line_annotation_overrides_the_receiver_name() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
use std::sync::Mutex;
fn f(inner: &Mutex<std::fs::File>) {
    // mtm-lock: journal
    let Ok(g) = inner.lock() else { return };
    let _ = g.sync_all();
}
"#,
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
        assert_eq!(a.lock.sites[0].lock, "journal", "{:?}", a.lock.sites);
    }
}
