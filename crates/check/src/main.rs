//! The `mtm-check` command-line tool.
//!
//! ```text
//! cargo run -p mtm-check -- analyze [--update-ratchet] [--hot] [--locks] [--explain lock]
//! cargo run -p mtm-check -- lint
//! cargo run -p mtm-check -- invariants
//! cargo run -p mtm-check -- determinism
//! cargo run -p mtm-check -- coverage
//! cargo run -p mtm-check -- all
//! ```
//!
//! * `analyze` — AST-backed static analysis: determinism taint (with
//!   `mtm-allow` annotation adjudication), panic/index/div/alloc-hot
//!   budgets against `check/ratchet.toml`, float sanity, the hot-path
//!   allocation pass, and the lock-region pass. `--update-ratchet`
//!   rewrites the budget file from current counts (only do this after
//!   *reducing* sites); `--hot` prints the hot-path roots and every
//!   flagged site; `--locks` prints the named locks, the
//!   acquired-while-holding graph and every flagged blocking site;
//!   `--explain lock` documents the lock-region model and annotation
//!   grammar alongside the live lock graph.
//! * `lint` — comment-driven rules (`// SAFETY:`, `# Panics` docs).
//! * `invariants` — run guarded crate test suites with
//!   `--features strict-invariants`.
//! * `determinism` — build the probe and require bit-identical output
//!   across two runs.
//! * `coverage` — run `cargo llvm-cov` and enforce the per-unit line
//!   coverage floors in `check/ratchet.toml` `[coverage_floor]`
//!   (skipped with a notice when cargo-llvm-cov is not installed).
//! * `all` — every pass above (analyze, lint, invariants, determinism,
//!   coverage).
//!
//! Exit code 0 means the pass(es) succeeded; 1 means violations or a
//! nondeterministic run; 2 means the tool itself could not run (bad
//! usage or no workspace root).

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use mtm_check::analyze;
use mtm_check::coverage;
use mtm_check::determinism;
use mtm_check::lint;
use mtm_check::ratchet::Ratchet;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("");
    let rest: Vec<&str> = it.collect();
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mtm-check: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };
    let ok = match cmd {
        "analyze" => {
            let explain = rest
                .iter()
                .position(|a| *a == "--explain")
                .map(|i| rest.get(i + 1).copied().unwrap_or(""));
            if let Some(topic) = explain {
                if topic != "lock" {
                    eprintln!("usage: mtm-check analyze --explain lock");
                    return ExitCode::from(2);
                }
                print_lock_explainer();
            }
            run_analyze(
                &root,
                rest.contains(&"--update-ratchet"),
                rest.contains(&"--hot"),
                rest.contains(&"--locks") || explain == Some("lock"),
            )
        }
        "lint" => run_lint(&root),
        "invariants" => run_invariants(),
        "determinism" => run_determinism(),
        "coverage" => run_coverage(&root),
        "all" => {
            let analyze_ok = run_analyze(&root, false, false, false);
            let lint_ok = run_lint(&root);
            let inv_ok = run_invariants();
            let det_ok = run_determinism();
            let cov_ok = run_coverage(&root);
            analyze_ok && lint_ok && inv_ok && det_ok && cov_ok
        }
        _ => {
            eprintln!(
                "usage: mtm-check <analyze [--update-ratchet] [--hot] [--locks] [--explain lock] | lint | invariants | determinism | coverage | all>"
            );
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Find the workspace root: walk up from the current directory to the
/// first `Cargo.toml` containing a `[workspace]` table.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".into());
        }
    }
}

/// The annotation grammar and model of the lock-region pass, for
/// `analyze --explain lock`.
fn print_lock_explainer() {
    println!(
        "\
mtm-check analyze --explain lock

  The lock-region pass statically checks held-lock hygiene:

  * Acquisitions: `.lock()` / `.read()` / `.write()` with empty argument
    lists, plus calls to `// mtm-lock: <name>`-annotated lock functions
    (e.g. serve's `lock_core` names the `core` lock). Locks unify by
    name: a line-level `// mtm-lock: <name>` directly above the
    acquisition wins, then the receiver identifier, then `file:line`.
  * Regions: the guard is live from the acquisition to a same-level
    `drop(<guard>)` or the end of the enclosing scope (statement-initial
    `let`), else to the end of the statement. Over-approximated: match
    arms, early returns and conditional drops stay inside the region.
  * Lints:
      blocking-under-lock  file/socket IO, flush/sync, thread join,
                           sleeps, IO macros, or reaching an `mtm-hot`
                           root, textually or through any function
                           reachable from calls made under the guard.
                           Charged to [blocking_under_lock] in
                           check/ratchet.toml; absent units are held at
                           zero (crates/serve is pinned there).
      lock-order cycles    every acquisition inside a held region adds
                           an acquired-while-holding edge; any cycle
                           (double-lock self-cycles included) charges
                           [lock_order]. Never allow-suppressible.
      guard-across-wait    a guard other than the condvar's own held
                           across `Condvar::wait*` is a hard
                           `lock/guard-across-wait` diagnostic.
  * Sanctioning: `// mtm-allow: lock -- <reason>` at the acquisition
    covers the whole region; at the blocking site it covers that site
    for every region reaching it. Stale `mtm-lock:`/`mtm-allow: lock`
    annotations are hard errors (`lockregion/stale`, `annotation/stale`).

  Example: journal append hoisted out of serve's dispatch lock —

      let line = {{
          let mut core = self.lock_core();   // region opens
          core.transition(session)           // decide under the lock
      }};                                    // region closes
      self.store.meta_append(session, &line) // IO outside the guard
"
    );
}

/// The AST pass: taint + float findings are hard failures; panic/index/
/// div/alloc-hot/lock counts ratchet against `check/ratchet.toml`.
fn run_analyze(root: &Path, update_ratchet: bool, show_hot: bool, show_locks: bool) -> bool {
    println!(
        "mtm-check analyze: parsing workspace crates under {}",
        root.display()
    );
    let analysis = match analyze::analyze_workspace(root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mtm-check analyze: {e}");
            return false;
        }
    };

    if show_hot {
        println!(
            "mtm-check analyze: hot-path pass — {} root(s), {} function(s) reached",
            analysis.hot.roots.len(),
            analysis.hot.reached
        );
        for (key, qual) in &analysis.hot.roots {
            println!("  hot root [{key}] {qual}");
        }
        for site in &analysis.hot.sites {
            println!(
                "  hot site [{}] {}:{}: {} in `{}`",
                site.unit, site.file, site.line, site.what, site.in_fn
            );
        }
    }

    if show_locks {
        println!(
            "mtm-check analyze: lock-region pass — {} named lock(s), {} region(s)",
            analysis.lock.locks.len(),
            analysis.lock.regions
        );
        for lock in &analysis.lock.locks {
            println!("  lock `{lock}`");
        }
        for edge in &analysis.lock.edges {
            println!(
                "  order edge [{}] `{}` -> `{}` at {}:{}",
                edge.unit, edge.holder, edge.acquired, edge.file, edge.line
            );
        }
        for cycle in &analysis.lock.cycles {
            println!("  lock-order {cycle}");
        }
        for site in &analysis.lock.sites {
            println!(
                "  lock site [{}] {}:{}: {} in `{}`",
                site.unit, site.file, site.line, site.what, site.in_fn
            );
        }
    }

    let mut ok = true;
    if !analysis.report.is_empty() {
        print!("{}", analysis.report.render());
        println!(
            "mtm-check analyze: {} finding(s) — fix, or annotate sanctioned \
             sites with `// mtm-allow: <key> -- <reason>`",
            analysis.report.len()
        );
        ok = false;
    }

    let ratchet_path = root.join("check/ratchet.toml");
    if update_ratchet {
        // Carry non-counted tables (coverage floors) through the rewrite.
        let extras = fs::read_to_string(&ratchet_path)
            .ok()
            .and_then(|text| Ratchet::parse(&text).ok())
            .unwrap_or_default();
        let rendered = Ratchet::render_with(&analysis.counts, &extras);
        if let Some(parent) = ratchet_path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(e) = fs::write(&ratchet_path, rendered) {
            eprintln!("mtm-check analyze: write {}: {e}", ratchet_path.display());
            return false;
        }
        println!("mtm-check analyze: wrote {}", ratchet_path.display());
        return ok;
    }
    let recorded = match fs::read_to_string(&ratchet_path) {
        Ok(text) => match Ratchet::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mtm-check analyze: {e}");
                return false;
            }
        },
        Err(e) => {
            eprintln!(
                "mtm-check analyze: read {}: {e} (run with --update-ratchet to create it)",
                ratchet_path.display()
            );
            return false;
        }
    };
    let (failures, tighten) = recorded.compare(&analysis.counts);
    for f in &failures {
        println!("  ratchet: {f}");
    }
    for t in &tighten {
        println!("  ratchet (tightenable): {t}");
    }
    if !failures.is_empty() {
        println!(
            "mtm-check analyze: ratchet violated — remove the new sites or \
             justify lowering elsewhere (`analyze --hot` lists hot-path \
             sites, `analyze --locks` lists held-lock sites)"
        );
        ok = false;
    }
    if ok {
        let totals = analysis
            .counts
            .values()
            .fold((0, 0, 0, 0, 0, 0), |(p, x, d, a, b, l), c| {
                (
                    p + c.panic_sites,
                    x + c.index_sites,
                    d + c.div_sites,
                    a + c.alloc_hot,
                    b + c.blocking_under_lock,
                    l + c.lock_order,
                )
            });
        println!(
            "mtm-check analyze: OK (0 taint/float findings; within ratchet: \
             {} panic, {} index, {} div, {} hot-alloc, {} blocking-under-lock, \
             {} lock-order sites)",
            totals.0, totals.1, totals.2, totals.3, totals.4, totals.5
        );
    }
    ok
}

fn run_lint(root: &Path) -> bool {
    println!(
        "mtm-check lint: scanning library sources under {}",
        root.display()
    );
    let report = match lint::scan_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mtm-check lint: {e}");
            return false;
        }
    };
    for v in &report.violations {
        println!("  {v}");
    }
    if report.violations.is_empty() {
        println!("mtm-check lint: OK (0 rule violations)");
        true
    } else {
        println!(
            "mtm-check lint: {} rule violation(s)",
            report.violations.len()
        );
        false
    }
}

/// Run each guarded crate's test suite with `strict-invariants` enabled,
/// so every inserted guard actually executes against real workloads.
fn run_invariants() -> bool {
    let crates = [
        "mtm-linalg",
        "mtm-gp",
        "mtm-stormsim",
        "mtm-bayesopt",
        "mtm-runner",
    ];
    let mut ok = true;
    for krate in crates {
        println!("mtm-check invariants: cargo test -p {krate} --features strict-invariants");
        let status = Command::new("cargo")
            .args(["test", "-q", "-p", krate, "--features", "strict-invariants"])
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("mtm-check invariants: {krate} failed with {s}");
                ok = false;
            }
            Err(e) => {
                eprintln!("mtm-check invariants: cargo: {e}");
                ok = false;
            }
        }
    }
    if ok {
        println!("mtm-check invariants: OK (all guarded test suites green)");
    }
    ok
}

/// Enforce the `[coverage_floor]` line-coverage floors via
/// `cargo llvm-cov`. The llvm-cov subcommand is an external cargo
/// extension, so its absence is a skip (with a notice), not a failure —
/// CI installs it and gets the hard gate.
fn run_coverage(root: &Path) -> bool {
    let ratchet_path = root.join("check/ratchet.toml");
    let floors = match fs::read_to_string(&ratchet_path).map(|t| Ratchet::parse(&t)) {
        Ok(Ok(r)) => r
            .tables
            .get(coverage::COVERAGE_TABLE)
            .cloned()
            .unwrap_or_default(),
        Ok(Err(e)) => {
            eprintln!("mtm-check coverage: {e}");
            return false;
        }
        Err(e) => {
            eprintln!("mtm-check coverage: read {}: {e}", ratchet_path.display());
            return false;
        }
    };
    if floors.is_empty() {
        println!("mtm-check coverage: OK (no [coverage_floor] entries in check/ratchet.toml)");
        return true;
    }
    let probe = Command::new("cargo")
        .args(["llvm-cov", "--version"])
        .output();
    if !probe.map(|o| o.status.success()).unwrap_or(false) {
        println!(
            "mtm-check coverage: skipped ({} floor(s) recorded, but cargo-llvm-cov \
             is not installed; `cargo install cargo-llvm-cov` to enforce locally)",
            floors.len()
        );
        return true;
    }
    println!("mtm-check coverage: cargo llvm-cov --workspace --json --summary-only");
    let output = Command::new("cargo")
        .args(["llvm-cov", "--workspace", "--json", "--summary-only"])
        .current_dir(root)
        .output();
    let output = match output {
        Ok(o) if o.status.success() => o,
        Ok(o) => {
            eprintln!(
                "mtm-check coverage: cargo llvm-cov failed with {}",
                o.status
            );
            return false;
        }
        Err(e) => {
            eprintln!("mtm-check coverage: cargo: {e}");
            return false;
        }
    };
    let files = coverage::parse_llvm_cov_json(&String::from_utf8_lossy(&output.stdout));
    let (failures, report) = coverage::check_floors(&floors, &files);
    for line in &report {
        println!("  coverage: {line}");
    }
    for f in &failures {
        println!("  coverage: {f}");
    }
    if failures.is_empty() {
        println!("mtm-check coverage: OK ({} floor(s) met)", floors.len());
        true
    } else {
        println!(
            "mtm-check coverage: {} floor(s) violated — add tests or justify \
             raising coverage elsewhere (floors never go down)",
            failures.len()
        );
        false
    }
}

/// Build the probe once, then run it twice and require bit-identical
/// stdout.
fn run_determinism() -> bool {
    println!("mtm-check determinism: building probe");
    let build = Command::new("cargo")
        .args(["build", "-q", "-p", "mtm", "--bin", "determinism_probe"])
        .status();
    match build {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("mtm-check determinism: probe build failed with {s}");
            return false;
        }
        Err(e) => {
            eprintln!("mtm-check determinism: cargo: {e}");
            return false;
        }
    }
    println!("mtm-check determinism: running probe twice (flow sim, tuple sim, 10-step BO)");
    let outcome = determinism::run_twice_and_diff(
        "cargo",
        &["run", "-q", "-p", "mtm", "--bin", "determinism_probe"],
    );
    match outcome {
        Ok(diff) if diff.identical => {
            println!(
                "mtm-check determinism: OK ({} lines of metrics bit-identical across runs)",
                diff.lines
            );
            true
        }
        Ok(diff) => {
            if let Some((line, a, b)) = diff.first_divergence {
                eprintln!("mtm-check determinism: NONDETERMINISM at output line {line}:");
                eprintln!("  run A: {a}");
                eprintln!("  run B: {b}");
            }
            false
        }
        Err(e) => {
            eprintln!("mtm-check determinism: {e}");
            false
        }
    }
}
