//! Runtime invariant guards for the numeric and simulation kernels.
//!
//! These are the checks that are too expensive (or too noisy) to run
//! unconditionally but catch exactly the silent corruption the optimizer
//! cannot recover from: NaN/inf leaking into a kernel matrix or an EI
//! score, an asymmetric or indefinite matrix reaching Cholesky, and a
//! simulator clock stepping backwards. The numeric crates re-export this
//! module behind their `strict-invariants` feature and call the guards at
//! ~10 hot call sites; enable with e.g.
//! `cargo test -p mtm-gp --features strict-invariants`.
//!
//! All guards take the matrix as an `(n, get)` pair rather than a concrete
//! type so this crate stays dependency-free.

/// Assert every value in `values` is finite (no NaN, no ±inf).
///
/// # Panics
///
/// Panics with `tag` and the offending index/value on the first
/// non-finite entry.
pub fn assert_finite(tag: &str, values: &[f64]) {
    for (i, &v) in values.iter().enumerate() {
        assert!(
            v.is_finite(),
            "strict-invariants: {tag}: non-finite value {v} at index {i}"
        );
    }
}

/// Assert a single scalar is finite.
///
/// # Panics
///
/// Panics with `tag` if `value` is NaN or ±inf.
pub fn assert_finite_val(tag: &str, value: f64) {
    assert!(
        value.is_finite(),
        "strict-invariants: {tag}: non-finite value {value}"
    );
}

/// Assert the `n`×`n` matrix read through `get` is symmetric to a
/// scale-relative tolerance.
///
/// # Panics
///
/// Panics with `tag` and the first offending `(i, j)` pair.
pub fn check_symmetric(tag: &str, n: usize, get: &dyn Fn(usize, usize) -> f64) {
    let mut scale = 0.0f64;
    for i in 0..n {
        scale = scale.max(get(i, i).abs());
    }
    let tol = 1e-9 * scale.max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            let a = get(i, j);
            let b = get(j, i);
            assert!(
                (a - b).abs() <= tol,
                "strict-invariants: {tag}: asymmetric at ({i},{j}): {a} vs {b}"
            );
        }
    }
}

/// Spot-check positive semi-definiteness of the `n`×`n` matrix read
/// through `get`: evaluates `v^T A v` for a few deterministic pseudo-random
/// probe vectors. Cheaper than a factorization (`O(k n^2)`) and catches
/// grossly indefinite matrices before they reach Cholesky.
///
/// # Panics
///
/// Panics with `tag` if any probe produces a quadratic form below
/// `-tol * scale`.
pub fn check_psd_spot(tag: &str, n: usize, get: &dyn Fn(usize, usize) -> f64) {
    if n == 0 {
        return;
    }
    let mut scale = 0.0f64;
    for i in 0..n {
        scale = scale.max(get(i, i).abs());
    }
    let tol = 1e-8 * scale.max(1.0);
    // Deterministic xorshift probes: the guard must never introduce
    // nondeterminism into the code it is guarding.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for probe in 0..3u32 {
        let v: Vec<f64> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect();
        let mut quad = 0.0;
        for i in 0..n {
            for j in 0..n {
                quad += v[i] * get(i, j) * v[j];
            }
        }
        assert!(
            quad >= -tol,
            "strict-invariants: {tag}: probe {probe} gives v^T A v = {quad} < 0 — not PSD"
        );
    }
}

/// Assert an incrementally maintained Cholesky factor is still a valid
/// positive-definite factor (finite entries, strictly positive diagonal)
/// and agrees elementwise with a freshly computed factor of the same
/// matrix to a scale-relative tolerance. Called at refit boundaries,
/// where the incremental GP replaces a chain of `O(n²)` rank-one /
/// bordered updates with a from-scratch factorization: any drift the
/// updates accumulated shows up here.
///
/// # Panics
///
/// Panics with `tag` on a non-finite or non-positive diagonal entry in
/// the incremental factor, or on the first element that drifts beyond
/// the tolerance.
pub fn check_factor_agreement(
    tag: &str,
    n: usize,
    incremental: &dyn Fn(usize, usize) -> f64,
    fresh: &dyn Fn(usize, usize) -> f64,
) {
    let mut scale = 0.0f64;
    for i in 0..n {
        scale = scale.max(fresh(i, i).abs());
    }
    let tol = 1e-6 * scale.max(1.0);
    for i in 0..n {
        let d = incremental(i, i);
        assert!(
            d.is_finite() && d > 0.0,
            "strict-invariants: {tag}: incremental factor diagonal {d} at {i} is not positive — factor left the PD cone"
        );
        for j in 0..=i {
            let a = incremental(i, j);
            let b = fresh(i, j);
            assert!(
                a.is_finite(),
                "strict-invariants: {tag}: non-finite incremental factor entry at ({i},{j})"
            );
            assert!(
                (a - b).abs() <= tol,
                "strict-invariants: {tag}: incremental factor drifted at ({i},{j}): {a} vs fresh {b} (tol {tol})"
            );
        }
    }
}

/// Assert simulation time never moves backwards: `next >= prev`, both
/// finite.
///
/// # Panics
///
/// Panics with `tag` if `next < prev` or either timestamp is non-finite.
pub fn check_monotonic_time(tag: &str, prev: f64, next: f64) {
    assert!(
        prev.is_finite() && next.is_finite(),
        "strict-invariants: {tag}: non-finite timestamp ({prev} -> {next})"
    );
    assert!(
        next >= prev,
        "strict-invariants: {tag}: time moved backwards: {next} < {prev}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_passes_and_nan_trips() {
        assert_finite("ok", &[1.0, -2.0, 0.0]);
        assert_finite_val("ok", 3.5);
        let caught = std::panic::catch_unwind(|| assert_finite("bad", &[1.0, f64::NAN]));
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| assert_finite_val("bad", f64::INFINITY));
        assert!(caught.is_err());
    }

    #[test]
    fn symmetric_check() {
        let a = [[2.0, 0.5], [0.5, 3.0]];
        check_symmetric("sym", 2, &|i, j| a[i][j]);
        let b = [[2.0, 0.5], [0.4, 3.0]];
        let caught = std::panic::catch_unwind(|| check_symmetric("asym", 2, &|i, j| b[i][j]));
        assert!(caught.is_err());
    }

    #[test]
    fn psd_spot_check() {
        // Identity is PSD.
        check_psd_spot("id", 4, &|i, j| if i == j { 1.0 } else { 0.0 });
        // diag(1, -5) is indefinite and the probes must find it.
        let caught = std::panic::catch_unwind(|| {
            check_psd_spot("indef", 2, &|i, j| match (i, j) {
                (0, 0) => 1.0,
                (1, 1) => -5.0,
                _ => 0.0,
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn factor_agreement_check() {
        // Identical factors pass.
        let l = [[2.0, 0.0], [0.5, 1.5]];
        check_factor_agreement("same", 2, &|i, j| l[i][j], &|i, j| l[i][j]);
        // Drift beyond tolerance trips.
        let drifted = [[2.1, 0.0], [0.5, 1.5]];
        let caught = std::panic::catch_unwind(|| {
            check_factor_agreement("drift", 2, &|i, j| drifted[i][j], &|i, j| l[i][j])
        });
        assert!(caught.is_err());
        // Non-positive diagonal trips even when both sides agree.
        let flat = [[2.0, 0.0], [0.5, 0.0]];
        let caught = std::panic::catch_unwind(|| {
            check_factor_agreement("flat", 2, &|i, j| flat[i][j], &|i, j| flat[i][j])
        });
        assert!(caught.is_err());
    }

    #[test]
    fn monotonic_time_check() {
        check_monotonic_time("clock", 1.0, 1.0);
        check_monotonic_time("clock", 1.0, 2.0);
        let caught = std::panic::catch_unwind(|| check_monotonic_time("clock", 2.0, 1.0));
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(|| check_monotonic_time("clock", 0.0, f64::NAN));
        assert!(caught.is_err());
    }
}
