//! Source-level lint pass: comment-driven rules.
//!
//! A lightweight line scanner enforcing the two repo rules that live in
//! *comments* — which the token-tree front end in [`crate::ast`]
//! deliberately side-channels — and so stay text-based:
//!
//! 1. **unsafe-no-safety** — any `unsafe` token without a `// SAFETY:`
//!    comment on the same or one of the three preceding lines.
//! 2. **missing-panics-doc** — a `pub fn` in `linalg`/`gp` whose body can
//!    panic (`unwrap`/`expect`/`panic!`/`assert!` family, excluding
//!    `debug_assert`) must document it with a `# Panics` doc section.
//!
//! Panic-site counting and float-comparison detection used to live here
//! as substring scans; they are now AST passes in [`crate::analyze`]
//! (subcommand `analyze`), which counts against the multi-table budgets
//! in `check/ratchet.toml` and adjudicates `mtm-allow` annotations.
//!
//! The scanner strips comments and string/char literals first, then walks
//! lines with a brace-depth tracker to skip `#[cfg(test)]` regions and
//! statements gated on the `strict-invariants` feature (those *are* the
//! assertion layer). The fixtures under `crates/check/tests/fixtures/`
//! pin the behavior.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Which lint rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeNoSafety,
    /// Panicking `pub fn` without a `# Panics` doc section.
    MissingPanicsDoc,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::MissingPanicsDoc => "missing-panics-doc",
        };
        f.write_str(name)
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Which rule families apply to a file (derived from its path).
#[derive(Debug, Clone, Copy)]
pub struct RuleScope {
    /// Require `# Panics` docs on panicking pub fns (linalg/gp).
    pub panics_doc: bool,
}

impl RuleScope {
    /// Every rule on — what the fixtures use.
    pub fn all() -> RuleScope {
        RuleScope { panics_doc: true }
    }

    /// Scope for a workspace-relative path.
    pub fn for_path(rel: &str) -> RuleScope {
        let panics_doc = ["crates/linalg/src", "crates/gp/src"]
            .iter()
            .any(|p| rel.starts_with(p));
        RuleScope { panics_doc }
    }
}

/// A source line after literal stripping: executable code and comment text
/// separated.
#[derive(Debug, Default, Clone)]
struct LineInfo {
    /// Code with string/char literal *contents* and comments removed.
    code: String,
    /// Comment text on the line (line + block comments, without `//`).
    comment: String,
}

/// Strip comments and literal contents, preserving line structure.
fn strip(source: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut lines = Vec::new();
    let mut cur = LineInfo::default();
    let mut mode = Mode::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && next == '/' {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == 'r' && (next == '"' || next == '#') && !prev_is_ident(&cur.code) {
                    // Raw string r"..." / r#"..."#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // couple of characters.
                    if next == '\\' {
                        let mut j = i + 2;
                        // Skip the escape payload up to the closing quote.
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push_str("'c'");
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("'c'");
                        i += 3;
                    } else {
                        cur.code.push(c); // lifetime
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Per-line flags computed by the region tracker.
#[derive(Debug, Clone, Copy, Default)]
struct LineFlags {
    /// Inside a `#[cfg(test)]` item.
    in_test: bool,
    /// Part of a statement gated on `#[cfg(feature = "strict-invariants")]`.
    strict_gated: bool,
}

/// Walk lines tracking brace depth, `#[cfg(test)]` regions and
/// strict-invariants-gated statements.
fn classify_lines(lines: &[LineInfo]) -> Vec<LineFlags> {
    let mut flags = vec![LineFlags::default(); lines.len()];
    let mut depth: i32 = 0;
    // Depth at which each active #[cfg(test)] region opened.
    let mut test_close_depth: Option<i32> = None;
    let mut cfg_test_pending = false;
    let mut strict_pending = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let in_test = test_close_depth.is_some();
        if code.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        if code.contains("#[cfg(feature = \"strict-invariants\")]")
            || code.contains("#[cfg(feature=\"strict-invariants\")]")
        {
            strict_pending = true;
        }
        flags[idx] = LineFlags {
            in_test,
            strict_gated: strict_pending,
        };
        // A gated statement ends at `;` (call) or when its block closes;
        // multi-line gated statements keep the flag until then.
        if strict_pending && (code.trim_end().ends_with(';') || code.trim_end().ends_with('}')) {
            strict_pending = false;
        }
        let mut line_opens_test = false;
        for c in code.chars() {
            match c {
                '{' => {
                    if cfg_test_pending && test_close_depth.is_none() {
                        test_close_depth = Some(depth);
                        cfg_test_pending = false;
                        line_opens_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_close_depth == Some(depth) {
                        test_close_depth = None;
                    }
                }
                ';' => {
                    // `#[cfg(test)] mod foo;` gates an out-of-line module.
                    if cfg_test_pending && depth == 0 && code.contains("mod ") {
                        cfg_test_pending = false;
                    }
                }
                _ => {}
            }
        }
        if line_opens_test {
            flags[idx].in_test = true;
        }
    }
    flags
}

/// True if `code` contains an assertion or panic that can fire in release
/// builds (used by the `# Panics` doc rule; `debug_assert*` excluded).
fn can_panic(code: &str) -> bool {
    code.contains(".unwrap()")
        || code.contains(".expect(")
        || contains_macro(code, "panic")
        || contains_macro(code, "assert")
        || contains_macro(code, "assert_eq")
        || contains_macro(code, "assert_ne")
        || contains_macro(code, "unreachable")
}

/// Word-boundary `name!` match: `assert` must not match `debug_assert!`.
fn contains_macro(code: &str, name: &str) -> bool {
    let needle = format!("{name}!");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let at = from + pos;
        let prev_ok = at == 0 || {
            let p = bytes[at - 1] as char;
            !(p.is_alphanumeric() || p == '_')
        };
        if prev_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Scan one file's source. `rel` is the workspace-relative path used in
/// reports.
pub fn scan_source(rel: &str, source: &str, scope: &RuleScope) -> Vec<Violation> {
    let lines = strip(source);
    let flags = classify_lines(&lines);
    let raw_lines: Vec<&str> = source.lines().collect();
    let excerpt = |idx: usize| {
        raw_lines
            .get(idx)
            .map_or(String::new(), |l| l.trim().to_string())
    };
    let mut out = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        if flags[idx].in_test || flags[idx].strict_gated {
            continue;
        }
        let code = line.code.as_str();
        if contains_word(code, "unsafe") {
            let documented = (idx.saturating_sub(3)..=idx)
                .any(|j| lines[j].comment.trim_start().starts_with("SAFETY:"));
            if !documented {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::UnsafeNoSafety,
                    excerpt: excerpt(idx),
                });
            }
        }
    }

    if scope.panics_doc {
        out.extend(missing_panics_docs(rel, &lines, &flags, &excerpt));
    }
    out.sort_by_key(|v| v.line);
    out
}

fn contains_word(code: &str, word: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let prev_ok = at == 0 || {
            let p = b[at - 1] as char;
            !(p.is_alphanumeric() || p == '_')
        };
        let end = at + word.len();
        let next_ok = end >= b.len() || {
            let n = b[end] as char;
            !(n.is_alphanumeric() || n == '_')
        };
        if prev_ok && next_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The `# Panics` doc rule: find each `pub fn`, collect its preceding doc
/// comment and its body, and flag panicking bodies without the section.
fn missing_panics_docs(
    rel: &str,
    lines: &[LineInfo],
    flags: &[LineFlags],
    excerpt: &dyn Fn(usize) -> String,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut doc: String = String::new();
    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        let code = line.code.trim();
        if flags[idx].in_test {
            doc.clear();
            idx += 1;
            continue;
        }
        // Doc comments arrive as comments whose text starts with '/'
        // (the third slash of `///`).
        if code.is_empty() && line.comment.starts_with('/') {
            doc.push_str(&line.comment);
            doc.push('\n');
            idx += 1;
            continue;
        }
        if code.is_empty() || code.starts_with("#[") {
            // Blank lines and attributes don't break the doc block.
            idx += 1;
            continue;
        }
        if find_pub_fn(code).is_some() {
            // Find the body: the first '{' at or after this line.
            let (body_start, mut depth) = match find_body_open(lines, idx) {
                Some(v) => v,
                None => {
                    doc.clear();
                    idx += 1;
                    continue;
                }
            };
            let mut body_can_panic = false;
            let mut j = body_start;
            loop {
                if j >= lines.len() {
                    break;
                }
                let l = &lines[j];
                let mut line_done = false;
                for (ci, c) in l.code.char_indices() {
                    if j == body_start && ci < body_open_col(lines, body_start) {
                        continue;
                    }
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                line_done = true;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if !flags[j].strict_gated && !flags[j].in_test && can_panic(&l.code) {
                    body_can_panic = true;
                }
                if line_done {
                    break;
                }
                j += 1;
            }
            if body_can_panic && !doc.contains("# Panics") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::MissingPanicsDoc,
                    excerpt: excerpt(idx),
                });
            }
            doc.clear();
            idx = j + 1;
            continue;
        }
        doc.clear();
        idx += 1;
    }
    out
}

/// Column of the first `{` on the body-opening line (0 when the whole line
/// belongs to the body).
fn body_open_col(lines: &[LineInfo], line_idx: usize) -> usize {
    lines[line_idx].code.find('{').unwrap_or(0)
}

/// Locate the line holding the opening `{` of the fn starting at
/// `fn_line`. Returns `(line_index, initial_depth=0)`; depth counting
/// starts at that `{`.
fn find_body_open(lines: &[LineInfo], fn_line: usize) -> Option<(usize, i32)> {
    for (j, line) in lines.iter().enumerate().skip(fn_line).take(20) {
        if line.code.contains(';')
            && !line.code.contains('{')
            && line.code.contains("fn ")
            && j == fn_line
        {
            // Trait method declaration without a body.
            return None;
        }
        if line.code.contains('{') {
            return Some((j, 0));
        }
    }
    None
}

/// Does `code` start a public function item? Returns the column.
fn find_pub_fn(code: &str) -> Option<usize> {
    for pat in [
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub(crate) fn ",
    ] {
        if let Some(at) = code.find(pat) {
            // `pub(crate)` is not part of the public API; skip it.
            if pat == "pub(crate) fn " {
                return None;
            }
            return Some(at);
        }
    }
    None
}

/// Scan result for a whole tree.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All violations found. Every one fails the build — the ratcheted
    /// counting rules live in [`crate::analyze`] now.
    pub violations: Vec<Violation>,
}

/// Map a workspace-relative file to its ratchet unit (`crates/<name>` or
/// `src` for the root crate).
pub fn ratchet_unit(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        format!("crates/{}", parts[1])
    } else {
        "src".to_string()
    }
}

/// Scan the workspace's library code rooted at `root`: `crates/*/src/**`
/// and the root `src/**`. Vendored `third_party/` stand-ins and test trees
/// are out of scope.
pub fn scan_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = WorkspaceReport::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let scope = RuleScope::for_path(&rel);
        report.violations.extend(scan_source(&rel, &source, &scope));
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source("test.rs", src, &RuleScope::all())
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core(); } }";
        assert!(scan(bad).iter().any(|v| v.rule == Rule::UnsafeNoSafety));
        let good = "// SAFETY: checked above\nfn f() { unsafe { core(); } }";
        assert!(scan(good).iter().all(|v| v.rule != Rule::UnsafeNoSafety));
    }

    #[test]
    fn unsafe_in_string_or_test_does_not_count() {
        let in_string = r#"fn f() -> &'static str { "unsafe" }"#;
        assert!(scan(in_string).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { core(); } }\n}";
        assert!(scan(in_test).is_empty());
    }

    #[test]
    fn panics_doc_required_for_panicking_pub_fn() {
        let bad = r#"
/// Does a thing.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
        assert!(scan(bad).iter().any(|v| v.rule == Rule::MissingPanicsDoc));
        let good = r#"
/// Does a thing.
///
/// # Panics
///
/// Panics when `x` is `None`.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
        assert!(scan(good).iter().all(|v| v.rule != Rule::MissingPanicsDoc));
        let non_panicking = r#"
/// Does a thing.
pub fn f(x: Option<u32>) -> Option<u32> {
    x.map(|v| v + 1)
}
"#;
        assert!(scan(non_panicking)
            .iter()
            .all(|v| v.rule != Rule::MissingPanicsDoc));
    }

    #[test]
    fn debug_assert_is_not_a_panic_for_docs() {
        let src = r#"
/// Docs.
pub fn f(x: usize) {
    debug_assert!(x > 0);
}
"#;
        assert!(scan(src).iter().all(|v| v.rule != Rule::MissingPanicsDoc));
    }

    #[test]
    fn strict_invariant_guards_are_exempt() {
        let src = "
/// Docs.
pub fn f(xs: &[f64]) {
    #[cfg(feature = \"strict-invariants\")]
    crate::invariants::assert_finite(\"f\", xs);
    let _ = xs;
}
";
        let v = scan(src);
        assert!(v.iter().all(|v| v.rule != Rule::MissingPanicsDoc), "{v:?}");
    }

    #[test]
    fn ratchet_units() {
        assert_eq!(ratchet_unit("crates/gp/src/gp.rs"), "crates/gp");
        assert_eq!(ratchet_unit("src/bin/mtm-tune.rs"), "src");
    }
}
