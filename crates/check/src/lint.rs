//! Source-level lint pass.
//!
//! A lightweight line/token scanner (no external parser) enforcing the
//! repo-specific rules described in DESIGN.md "Correctness tooling":
//!
//! 1. **panic-site** — `.unwrap()` / `.expect(` / `panic!` in library code
//!    outside `#[cfg(test)]`. Existing sites are grandfathered through the
//!    per-crate counts in `check/ratchet.toml`; the count can only go down.
//! 2. **float-cmp** — `==` / `!=` with a float operand in the numeric
//!    kernels (`linalg`/`gp`/`stats`). Exact comparisons that are correct
//!    by design (sparse-skip on `0.0`, boundary sentinels) are annotated
//!    with `// lint:allow(float_cmp) <reason>` on the same line or on
//!    their own line directly above.
//! 3. **unsafe-no-safety** — any `unsafe` token without a `// SAFETY:`
//!    comment on the same or one of the three preceding lines.
//! 4. **missing-panics-doc** — a `pub fn` in `linalg`/`gp` whose body can
//!    panic (`unwrap`/`expect`/`panic!`/`assert!` family, excluding
//!    `debug_assert`) must document it with a `# Panics` doc section.
//!
//! The scanner strips comments and string/char literals first, then walks
//! lines with a brace-depth tracker to skip `#[cfg(test)]` regions and
//! statements gated on the `strict-invariants` feature (those *are* the
//! assertion layer). It is a heuristic, not a parser — rule scoping keeps
//! the false-positive rate at zero for this codebase, and the fixtures
//! under `crates/check/tests/fixtures/` pin the behavior.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Which lint rule a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` outside tests (ratcheted).
    PanicSite,
    /// Float `==` / `!=` in a numeric kernel without an allow annotation.
    FloatCmp,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeNoSafety,
    /// Panicking `pub fn` without a `# Panics` doc section.
    MissingPanicsDoc,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::PanicSite => "panic-site",
            Rule::FloatCmp => "float-cmp",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::MissingPanicsDoc => "missing-panics-doc",
        };
        f.write_str(name)
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Which rule families apply to a file (derived from its path).
#[derive(Debug, Clone, Copy)]
pub struct RuleScope {
    /// Count panic sites (all library code).
    pub panic_sites: bool,
    /// Ban float comparisons (linalg/gp/stats).
    pub float_cmp: bool,
    /// Require `# Panics` docs on panicking pub fns (linalg/gp).
    pub panics_doc: bool,
}

impl RuleScope {
    /// Every rule on — what the fixtures use.
    pub fn all() -> RuleScope {
        RuleScope {
            panic_sites: true,
            float_cmp: true,
            panics_doc: true,
        }
    }

    /// Scope for a workspace-relative path.
    pub fn for_path(rel: &str) -> RuleScope {
        let float = ["crates/linalg/src", "crates/gp/src", "crates/stats/src"]
            .iter()
            .any(|p| rel.starts_with(p));
        let panics_doc = ["crates/linalg/src", "crates/gp/src"]
            .iter()
            .any(|p| rel.starts_with(p));
        RuleScope {
            panic_sites: true,
            float_cmp: float,
            panics_doc,
        }
    }
}

/// A source line after literal stripping: executable code and comment text
/// separated.
#[derive(Debug, Default, Clone)]
struct LineInfo {
    /// Code with string/char literal *contents* and comments removed.
    code: String,
    /// Comment text on the line (line + block comments, without `//`).
    comment: String,
}

/// Strip comments and literal contents, preserving line structure.
fn strip(source: &str) -> Vec<LineInfo> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
    }
    let mut lines = Vec::new();
    let mut cur = LineInfo::default();
    let mut mode = Mode::Code;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && next == '/' {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == 'r' && (next == '"' || next == '#') && !prev_is_ident(&cur.code) {
                    // Raw string r"..." / r#"..."#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // couple of characters.
                    if next == '\\' {
                        let mut j = i + 2;
                        // Skip the escape payload up to the closing quote.
                        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                            j += 1;
                        }
                        cur.code.push_str("'c'");
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("'c'");
                        i += 3;
                    } else {
                        cur.code.push(c); // lifetime
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Per-line flags computed by the region tracker.
#[derive(Debug, Clone, Copy, Default)]
struct LineFlags {
    /// Inside a `#[cfg(test)]` item.
    in_test: bool,
    /// Part of a statement gated on `#[cfg(feature = "strict-invariants")]`.
    strict_gated: bool,
}

/// Walk lines tracking brace depth, `#[cfg(test)]` regions and
/// strict-invariants-gated statements.
fn classify_lines(lines: &[LineInfo]) -> Vec<LineFlags> {
    let mut flags = vec![LineFlags::default(); lines.len()];
    let mut depth: i32 = 0;
    // Depth at which each active #[cfg(test)] region opened.
    let mut test_close_depth: Option<i32> = None;
    let mut cfg_test_pending = false;
    let mut strict_pending = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let in_test = test_close_depth.is_some();
        if code.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }
        if code.contains("#[cfg(feature = \"strict-invariants\")]")
            || code.contains("#[cfg(feature=\"strict-invariants\")]")
        {
            strict_pending = true;
        }
        flags[idx] = LineFlags {
            in_test,
            strict_gated: strict_pending,
        };
        // A gated statement ends at `;` (call) or when its block closes;
        // multi-line gated statements keep the flag until then.
        if strict_pending && (code.trim_end().ends_with(';') || code.trim_end().ends_with('}')) {
            strict_pending = false;
        }
        let mut line_opens_test = false;
        for c in code.chars() {
            match c {
                '{' => {
                    if cfg_test_pending && test_close_depth.is_none() {
                        test_close_depth = Some(depth);
                        cfg_test_pending = false;
                        line_opens_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_close_depth == Some(depth) {
                        test_close_depth = None;
                    }
                }
                ';' => {
                    // `#[cfg(test)] mod foo;` gates an out-of-line module.
                    if cfg_test_pending && depth == 0 && code.contains("mod ") {
                        cfg_test_pending = false;
                    }
                }
                _ => {}
            }
        }
        if line_opens_test {
            flags[idx].in_test = true;
        }
    }
    flags
}

/// True if `code` contains a panic site (`.unwrap()`, `.expect(`,
/// `panic!`).
fn has_panic_site(code: &str) -> bool {
    code.contains(".unwrap()") || code.contains(".expect(") || contains_macro(code, "panic")
}

/// True if `code` contains an assertion or panic that can fire in release
/// builds (used by the `# Panics` doc rule; `debug_assert*` excluded).
fn can_panic(code: &str) -> bool {
    has_panic_site(code)
        || contains_macro(code, "assert")
        || contains_macro(code, "assert_eq")
        || contains_macro(code, "assert_ne")
        || contains_macro(code, "unreachable")
}

/// Word-boundary `name!` match: `assert` must not match `debug_assert!`.
fn contains_macro(code: &str, name: &str) -> bool {
    let needle = format!("{name}!");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(&needle) {
        let at = from + pos;
        let prev_ok = at == 0 || {
            let p = bytes[at - 1] as char;
            !(p.is_alphanumeric() || p == '_')
        };
        if prev_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Does either operand of a `==`/`!=` at `op` look like a float?
fn float_operand(code: &str, op: usize, op_len: usize) -> bool {
    let stop = |c: char| ",;(){}&|".contains(c);
    let left: String = code[..op]
        .chars()
        .rev()
        .take_while(|&c| !stop(c) && c != '=')
        .collect();
    let left: String = left.chars().rev().collect();
    let right: String = code[op + op_len..]
        .chars()
        .take_while(|&c| !stop(c))
        .collect();
    has_float_token(&left) || has_float_token(&right)
}

fn has_float_token(s: &str) -> bool {
    if s.contains("f64::") || s.contains("f32::") || s.contains("as f64") || s.contains("as f32") {
        return true;
    }
    // A digit immediately followed by `.` and not another ident char: a
    // float literal like `0.0`, `1.`, `2.5e-3`.
    let b = s.as_bytes();
    for i in 0..b.len().saturating_sub(1) {
        if b[i].is_ascii_digit() && b[i + 1] == b'.' {
            // Exclude method calls on ints like `3.max(x)` — require the
            // char after the dot to be a digit, `e`, or end-of-token.
            let after = b.get(i + 2).copied();
            if after.is_none_or(|c| c.is_ascii_digit() || c == b'e' || c == b' ' || c == b')') {
                return true;
            }
        }
    }
    false
}

/// Find `==`/`!=` comparison operators in `code` (excluding `<=`, `>=`,
/// `=>`, `===`-like runs). Returns `(byte_index, len)` pairs.
fn comparison_ops(code: &str) -> Vec<(usize, usize)> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < b.len() {
        let pair = &b[i..i + 2];
        if pair == b"==" {
            let prev = if i == 0 { b' ' } else { b[i - 1] };
            let next = b.get(i + 2).copied().unwrap_or(b' ');
            if !matches!(prev, b'<' | b'>' | b'!' | b'=' | b'+' | b'-' | b'*' | b'/')
                && next != b'='
            {
                out.push((i, 2));
            }
            i += 2;
        } else if pair == b"!=" {
            let next = b.get(i + 2).copied().unwrap_or(b' ');
            if next != b'=' {
                out.push((i, 2));
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

/// Scan one file's source. `rel` is the workspace-relative path used in
/// reports.
pub fn scan_source(rel: &str, source: &str, scope: &RuleScope) -> Vec<Violation> {
    let lines = strip(source);
    let flags = classify_lines(&lines);
    let raw_lines: Vec<&str> = source.lines().collect();
    let excerpt = |idx: usize| {
        raw_lines
            .get(idx)
            .map_or(String::new(), |l| l.trim().to_string())
    };
    let mut out = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        if flags[idx].in_test || flags[idx].strict_gated {
            continue;
        }
        let code = line.code.as_str();
        if scope.panic_sites && has_panic_site(code) {
            out.push(Violation {
                file: rel.to_string(),
                line: idx + 1,
                rule: Rule::PanicSite,
                excerpt: excerpt(idx),
            });
        }
        // The allow annotation may sit on the comparison line itself or on
        // its own line directly above (where rustfmt leaves it alone).
        let float_allowed = line.comment.contains("lint:allow(float_cmp)")
            || (idx > 0 && lines[idx - 1].comment.contains("lint:allow(float_cmp)"));
        if scope.float_cmp && !float_allowed {
            let hit = comparison_ops(code)
                .into_iter()
                .any(|(at, len)| float_operand(code, at, len));
            if hit {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::FloatCmp,
                    excerpt: excerpt(idx),
                });
            }
        }
        if contains_word(code, "unsafe") {
            let documented = (idx.saturating_sub(3)..=idx)
                .any(|j| lines[j].comment.trim_start().starts_with("SAFETY:"));
            if !documented {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::UnsafeNoSafety,
                    excerpt: excerpt(idx),
                });
            }
        }
    }

    if scope.panics_doc {
        out.extend(missing_panics_docs(rel, &lines, &flags, &excerpt));
    }
    out.sort_by_key(|v| v.line);
    out
}

fn contains_word(code: &str, word: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let prev_ok = at == 0 || {
            let p = b[at - 1] as char;
            !(p.is_alphanumeric() || p == '_')
        };
        let end = at + word.len();
        let next_ok = end >= b.len() || {
            let n = b[end] as char;
            !(n.is_alphanumeric() || n == '_')
        };
        if prev_ok && next_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The `# Panics` doc rule: find each `pub fn`, collect its preceding doc
/// comment and its body, and flag panicking bodies without the section.
fn missing_panics_docs(
    rel: &str,
    lines: &[LineInfo],
    flags: &[LineFlags],
    excerpt: &dyn Fn(usize) -> String,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut doc: String = String::new();
    let mut idx = 0;
    while idx < lines.len() {
        let line = &lines[idx];
        let code = line.code.trim();
        if flags[idx].in_test {
            doc.clear();
            idx += 1;
            continue;
        }
        // Doc comments arrive as comments whose text starts with '/'
        // (the third slash of `///`).
        if code.is_empty() && line.comment.starts_with('/') {
            doc.push_str(&line.comment);
            doc.push('\n');
            idx += 1;
            continue;
        }
        if code.is_empty() || code.starts_with("#[") {
            // Blank lines and attributes don't break the doc block.
            idx += 1;
            continue;
        }
        if find_pub_fn(code).is_some() {
            // Find the body: the first '{' at or after this line.
            let (body_start, mut depth) = match find_body_open(lines, idx) {
                Some(v) => v,
                None => {
                    doc.clear();
                    idx += 1;
                    continue;
                }
            };
            let mut body_can_panic = false;
            let mut j = body_start;
            loop {
                if j >= lines.len() {
                    break;
                }
                let l = &lines[j];
                let mut line_done = false;
                for (ci, c) in l.code.char_indices() {
                    if j == body_start && ci < body_open_col(lines, body_start) {
                        continue;
                    }
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                line_done = true;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if !flags[j].strict_gated && !flags[j].in_test && can_panic(&l.code) {
                    body_can_panic = true;
                }
                if line_done {
                    break;
                }
                j += 1;
            }
            if body_can_panic && !doc.contains("# Panics") {
                out.push(Violation {
                    file: rel.to_string(),
                    line: idx + 1,
                    rule: Rule::MissingPanicsDoc,
                    excerpt: excerpt(idx),
                });
            }
            doc.clear();
            idx = j + 1;
            continue;
        }
        doc.clear();
        idx += 1;
    }
    out
}

/// Column of the first `{` on the body-opening line (0 when the whole line
/// belongs to the body).
fn body_open_col(lines: &[LineInfo], line_idx: usize) -> usize {
    lines[line_idx].code.find('{').unwrap_or(0)
}

/// Locate the line holding the opening `{` of the fn starting at
/// `fn_line`. Returns `(line_index, initial_depth=0)`; depth counting
/// starts at that `{`.
fn find_body_open(lines: &[LineInfo], fn_line: usize) -> Option<(usize, i32)> {
    for (j, line) in lines.iter().enumerate().skip(fn_line).take(20) {
        if line.code.contains(';')
            && !line.code.contains('{')
            && line.code.contains("fn ")
            && j == fn_line
        {
            // Trait method declaration without a body.
            return None;
        }
        if line.code.contains('{') {
            return Some((j, 0));
        }
    }
    None
}

/// Does `code` start a public function item? Returns the column.
fn find_pub_fn(code: &str) -> Option<usize> {
    for pat in [
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub(crate) fn ",
    ] {
        if let Some(at) = code.find(pat) {
            // `pub(crate)` is not part of the public API; skip it.
            if pat == "pub(crate) fn " {
                return None;
            }
            return Some(at);
        }
    }
    None
}

/// Scan result for a whole tree: violations plus per-unit panic-site
/// counts (the ratchet input).
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All violations found (panic sites included).
    pub violations: Vec<Violation>,
}

impl WorkspaceReport {
    /// Violations that fail the build outright (everything except
    /// ratcheted panic sites).
    pub fn hard_failures(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| v.rule != Rule::PanicSite)
    }

    /// Per-unit panic-site counts, keyed like `check/ratchet.toml`
    /// (`crates/<name>` or `src` for the root crate).
    pub fn panic_counts(&self) -> std::collections::BTreeMap<String, usize> {
        let mut map = std::collections::BTreeMap::new();
        for v in &self.violations {
            if v.rule == Rule::PanicSite {
                *map.entry(ratchet_unit(&v.file)).or_insert(0) += 1;
            }
        }
        map
    }
}

/// Map a workspace-relative file to its ratchet unit.
pub fn ratchet_unit(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 2 {
        format!("crates/{}", parts[1])
    } else {
        "src".to_string()
    }
}

/// Scan the workspace's library code rooted at `root`: `crates/*/src/**`
/// and the root `src/**`. Vendored `third_party/` stand-ins and test trees
/// are out of scope.
pub fn scan_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    files.sort();

    let mut report = WorkspaceReport::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let scope = RuleScope::for_path(&rel);
        report.violations.extend(scan_source(&rel, &source, &scope));
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source("test.rs", src, &RuleScope::all())
    }

    #[test]
    fn panic_sites_flagged_outside_tests_only() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
#[cfg(test)]
mod tests {
    fn g(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
"#;
        let v = scan(src);
        let sites: Vec<_> = v.iter().filter(|v| v.rule == Rule::PanicSite).collect();
        assert_eq!(sites.len(), 1, "{v:?}");
        assert_eq!(sites[0].line, 3);
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = r#"
pub fn f() -> &'static str {
    // .unwrap() in a comment
    ".unwrap() in a string"
}
"#;
        assert!(scan(src).iter().all(|v| v.rule != Rule::PanicSite));
    }

    #[test]
    fn float_cmp_heuristics() {
        let flagged = "fn f(x: f64) -> bool { x == 0.5 }";
        assert!(scan(flagged).iter().any(|v| v.rule == Rule::FloatCmp));
        let int_ok = "fn f(x: usize) -> bool { x == 5 }";
        assert!(scan(int_ok).iter().all(|v| v.rule != Rule::FloatCmp));
        let le_ok = "fn f(x: f64) -> bool { x <= 0.5 }";
        assert!(scan(le_ok).iter().all(|v| v.rule != Rule::FloatCmp));
        let allowed = "fn f(x: f64) -> bool { x == 0.0 } // lint:allow(float_cmp) sentinel";
        assert!(scan(allowed).iter().all(|v| v.rule != Rule::FloatCmp));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core(); } }";
        assert!(scan(bad).iter().any(|v| v.rule == Rule::UnsafeNoSafety));
        let good = "// SAFETY: checked above\nfn f() { unsafe { core(); } }";
        assert!(scan(good).iter().all(|v| v.rule != Rule::UnsafeNoSafety));
    }

    #[test]
    fn panics_doc_required_for_panicking_pub_fn() {
        let bad = r#"
/// Does a thing.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
        assert!(scan(bad).iter().any(|v| v.rule == Rule::MissingPanicsDoc));
        let good = r#"
/// Does a thing.
///
/// # Panics
///
/// Panics when `x` is `None`.
pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
        assert!(scan(good).iter().all(|v| v.rule != Rule::MissingPanicsDoc));
        let non_panicking = r#"
/// Does a thing.
pub fn f(x: Option<u32>) -> Option<u32> {
    x.map(|v| v + 1)
}
"#;
        assert!(scan(non_panicking)
            .iter()
            .all(|v| v.rule != Rule::MissingPanicsDoc));
    }

    #[test]
    fn debug_assert_is_not_a_panic_for_docs() {
        let src = r#"
/// Docs.
pub fn f(x: usize) {
    debug_assert!(x > 0);
}
"#;
        assert!(scan(src).iter().all(|v| v.rule != Rule::MissingPanicsDoc));
    }

    #[test]
    fn strict_invariant_guards_are_exempt() {
        let src = "
/// Docs.
pub fn f(xs: &[f64]) {
    #[cfg(feature = \"strict-invariants\")]
    crate::invariants::assert_finite(\"f\", xs);
    let _ = xs;
}
";
        let v = scan(src);
        assert!(v.iter().all(|v| v.rule != Rule::MissingPanicsDoc), "{v:?}");
        assert!(v.iter().all(|v| v.rule != Rule::PanicSite), "{v:?}");
    }

    #[test]
    fn ratchet_units() {
        assert_eq!(ratchet_unit("crates/gp/src/gp.rs"), "crates/gp");
        assert_eq!(ratchet_unit("src/bin/mtm-tune.rs"), "src");
    }
}
