//! The `mtm-check analyze` pass: AST-backed workspace analysis.
//!
//! Orchestrates the front end ([`crate::ast`]), the call graph
//! ([`crate::callgraph`]) and three analyses:
//!
//! 1. **Determinism taint** ([`crate::taint`]) — nondeterminism sources
//!    reaching journaled/measured values; hard errors unless annotated
//!    with `// mtm-allow: <key> -- <reason>`.
//! 2. **Panic-path counting** — `.unwrap()` / `.expect(` / `panic!`,
//!    postfix indexing (`xs[i]`), and unguarded integer `/`/`%`, counted
//!    per ratchet unit against the budgets in `check/ratchet.toml`
//!    (tables `[panic_sites]`, `[index_sites]`, `[div_sites]`; counts can
//!    only go down).
//! 3. **Float sanity** — `f64`/`f32` `==`/`!=` (allow keys `float-eq`,
//!    legacy `lint:allow(float_cmp)` honored), `partial_cmp().unwrap()`
//!    on possibly-NaN keys, and order-sensitive reductions after a
//!    `par_iter` (`float-ord`).
//! 4. **Hot-path allocations** ([`crate::hotpath`]) — allocation, lock
//!    and IO sites reachable from `// mtm-hot: <key>` roots (cut at
//!    `// mtm-cold: <reason>` seams, `mtm-allow: alloc` adjudicated),
//!    ratcheted in the `[alloc_hot]` table.
//!
//! Statements gated on `#[cfg(feature = "strict-invariants")]` are the
//! assertion layer and are skipped, exactly like `#[cfg(test)]` items.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::ast::{self, CrateAst, Delim, Tok, TokKind, Tree};
use crate::callgraph::CallGraph;
use crate::diag::{Diag, Report};
use crate::ratchet::SiteCounts;
use crate::taint::{self, Allow};

/// Result of analyzing a workspace (or a fixture crate set).
#[derive(Debug, Default)]
pub struct Analysis {
    /// Hard findings: taint, float, annotation and module diagnostics.
    pub report: Report,
    /// Per-unit panic/index/div/alloc-hot counts (the ratchet input).
    /// Units with all-zero counts are omitted, matching the ratchet file.
    pub counts: std::collections::BTreeMap<String, SiteCounts>,
    /// Hot-path pass output: roots, reach, unsuppressed sites (drives
    /// `mtm-check analyze --hot`).
    pub hot: crate::hotpath::HotSummary,
    /// Lock-region pass output: named locks, regions, blocking sites and
    /// the acquired-while-holding graph (drives `analyze --locks`).
    pub lock: crate::lockregion::LockSummary,
}

/// Parse every workspace crate: `crates/*/src` plus the root `src/`.
/// Vendored `third_party/` stand-ins and the `tests/` member are out of
/// scope, as for `lint`.
pub fn parse_workspace(root: &Path) -> Result<Vec<CrateAst>, String> {
    let mut crates = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            crates.push(ast::parse_crate(root, &src, &format!("crates/{name}"))?);
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        crates.push(ast::parse_crate(root, &root_src, "src")?);
    }
    Ok(crates)
}

/// Analyze a parsed crate set: build the call graph, run every pass,
/// adjudicate annotations.
pub fn analyze_crates(crates: &[CrateAst]) -> Analysis {
    let mut analysis = Analysis::default();
    let graph = CallGraph::build(crates);

    // Annotations, collected per file so staleness can be reported even
    // for files no pass flags.
    let mut allows: Vec<Allow> = Vec::new();
    let mut legacy_float_allows: BTreeSet<(String, usize)> = BTreeSet::new();
    for krate in crates {
        for file in &krate.files {
            allows.extend(taint::collect_allows(file, &mut analysis.report));
            for c in &file.comments {
                if c.text.contains("lint:allow(float_cmp)") {
                    legacy_float_allows.insert((file.rel.clone(), c.line));
                }
            }
        }
        for orphan in &krate.orphans {
            analysis.report.push(Diag::new(
                "module/orphan",
                orphan,
                1,
                format!(
                    "file is not reachable from any `mod` declaration in {} — \
                     wire it into the module tree or remove it",
                    krate.unit
                ),
            ));
        }
    }

    taint::run_taint(&graph, crates, &mut allows, &mut analysis.report);

    let float_fields = float_fields(crates);
    for (fn_id, f) in graph.fns.iter().enumerate() {
        let unit = graph.units[fn_id].clone();
        let mut scan = BodyScan {
            float_fields: &float_fields,
            float_names: FloatNames::default(),
            counts: SiteCounts::default(),
            floats: Vec::new(),
        };
        collect_float_params(&f.params, &mut scan.float_names);
        collect_float_locals(&f.body, &mut scan.float_names);
        walk_body(&f.body, &mut scan);
        let entry = analysis.counts.entry(unit).or_default();
        entry.panic_sites += scan.counts.panic_sites;
        entry.index_sites += scan.counts.index_sites;
        entry.div_sites += scan.counts.div_sites;
        for (code, line, what) in scan.floats {
            let key = if code == "float/eq" {
                "float-eq"
            } else {
                "float-ord"
            };
            let legacy_ok = key == "float-eq"
                && (legacy_float_allows.contains(&(f.file.clone(), line))
                    || (line > 1 && legacy_float_allows.contains(&(f.file.clone(), line - 1))));
            if legacy_ok {
                continue;
            }
            if let Some(a) = allows
                .iter_mut()
                .find(|a| taint::allow_covers(a, key, &f.file, line, f.line, f.end_line))
            {
                a.used = true;
                continue;
            }
            analysis.report.push(Diag::new(
                &code,
                &f.file,
                line,
                format!(
                    "{what} in `{}`; fix it or annotate `// mtm-allow: {key} -- <why>`",
                    f.qual
                ),
            ));
        }
    }

    analysis.hot = crate::hotpath::run(
        &graph,
        crates,
        &mut allows,
        &mut analysis.report,
        &mut analysis.counts,
    );

    analysis.lock = crate::lockregion::run(
        &graph,
        crates,
        &mut allows,
        &mut analysis.report,
        &mut analysis.counts,
    );

    analysis.counts.retain(|_, c| !c.is_zero());

    for allow in &allows {
        if !allow.used {
            analysis.report.push(Diag::new(
                "annotation/stale",
                &allow.file,
                allow.line,
                format!(
                    "mtm-allow annotation ({}) no longer suppresses any finding — \
                     the target is gone or unreachable; remove the annotation",
                    allow.keys.join(", ")
                ),
            ));
        }
    }
    analysis
}

/// Analyze a workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    Ok(analyze_crates(&parse_workspace(root)?))
}

/// Analyze a single in-memory source file (fixture/test entry point).
/// The file is treated as a one-file crate with unit `crates/fixture`.
pub fn analyze_source(rel: &str, src: &str) -> Analysis {
    let krate = CrateAst {
        unit: "crates/fixture".to_string(),
        files: vec![ast::parse_file(rel, src)],
        orphans: Vec::new(),
    };
    analyze_crates(std::slice::from_ref(&krate))
}

/// How a declared type relates to floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FloatTy {
    /// `f64`/`f32` itself (through `&`/`mut`): the bare identifier is
    /// float evidence.
    Scalar,
    /// A float-bearing container (`Vec<f64>`, `&[f64]`, `[f32; 3]`, …):
    /// evidence only when indexed, so `xs.len()` stays integer-clean.
    Container,
}

/// Classify a flattened type string (space-separated tokens).
fn classify_float_ty(ty: &str) -> Option<FloatTy> {
    if !ty.contains("f64") && !ty.contains("f32") {
        return None;
    }
    let core: String = ty
        .replace('&', " ")
        .split_whitespace()
        .filter(|w| *w != "mut" && !w.starts_with('\''))
        .collect::<Vec<_>>()
        .join(" ");
    if core == "f64" || core == "f32" {
        Some(FloatTy::Scalar)
    } else {
        Some(FloatTy::Container)
    }
}

/// Per-tier sets of names that carry float evidence.
#[derive(Debug, Default)]
struct FloatNames {
    scalars: BTreeSet<String>,
    containers: BTreeSet<String>,
}

impl FloatNames {
    fn insert(&mut self, name: String, tier: FloatTy) {
        match tier {
            FloatTy::Scalar => self.scalars.insert(name),
            FloatTy::Container => self.containers.insert(name),
        };
    }
}

/// Field names with a float-typed declaration anywhere in the workspace.
fn float_fields(crates: &[CrateAst]) -> FloatNames {
    let mut out = FloatNames::default();
    for krate in crates {
        for file in &krate.files {
            for field in &file.fields {
                if let Some(tier) = classify_float_ty(&field.ty) {
                    out.insert(field.field.clone(), tier);
                }
            }
        }
    }
    out
}

/// Parameters with float-typed declarations: split the argument list on
/// top-level commas, take `name : Type` chunks (tuple patterns are
/// skipped), classify the type span.
fn collect_float_params(params: &[Tree], out: &mut FloatNames) {
    for chunk in params.split(|t| matches!(t, Tree::Tok(tok) if tok.is_punct(","))) {
        let Some(colon) = chunk
            .iter()
            .position(|t| matches!(t, Tree::Tok(tok) if tok.is_punct(":")))
        else {
            continue;
        };
        let name = chunk[..colon].iter().rev().find_map(|t| match t {
            Tree::Tok(tok) if tok.kind == TokKind::Ident && !tok.is_ident("mut") => {
                Some(tok.text.clone())
            }
            _ => None,
        });
        let (Some(name), Some(tier)) =
            (name, classify_float_ty(&ast::flatten(&chunk[colon + 1..])))
        else {
            continue;
        };
        out.insert(name, tier);
    }
}

/// Locals bound with float evidence. An explicit `let name: Type`
/// annotation is classified like a parameter type; without one, a
/// top-level float literal or `f64`/`f32` token in the initializer makes
/// the binding a scalar (`let y = x * 2.0;`).
fn collect_float_locals(trees: &[Tree], out: &mut FloatNames) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group(g) => collect_float_locals(&g.trees, out),
            Tree::Tok(tok) if tok.is_ident("let") => {
                let mut j = i + 1;
                let mut name: Option<String> = None;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Tok(t) if t.is_ident("mut") => {}
                        Tree::Tok(t) if t.kind == TokKind::Ident => {
                            name = Some(t.text.clone());
                            break;
                        }
                        _ => break,
                    }
                    j += 1;
                }
                // Optional `: Type` annotation up to `=`/`;`.
                let ann_start = trees[j..]
                    .iter()
                    .position(|t| matches!(t, Tree::Tok(tok) if tok.is_punct(":")))
                    .map(|p| j + p + 1);
                let stmt_end = trees[j..]
                    .iter()
                    .position(|t| matches!(t, Tree::Tok(tok) if tok.is_punct(";")))
                    .map_or(trees.len(), |p| j + p);
                let eq_pos = trees[j..stmt_end]
                    .iter()
                    .position(|t| matches!(t, Tree::Tok(tok) if tok.is_punct("=")))
                    .map_or(stmt_end, |p| j + p);
                let tier = match ann_start {
                    Some(a) if a <= eq_pos => classify_float_ty(&ast::flatten(&trees[a..eq_pos])),
                    _ => {
                        let scalar = trees[eq_pos.min(stmt_end)..stmt_end].iter().any(|t| {
                            matches!(t, Tree::Tok(tok) if tok.kind == TokKind::Float
                                || tok.is_ident("f64")
                                || tok.is_ident("f32"))
                        });
                        scalar.then_some(FloatTy::Scalar)
                    }
                };
                if let (Some(name), Some(tier)) = (name, tier) {
                    out.insert(name, tier);
                }
                i = stmt_end;
            }
            Tree::Tok(_) => {}
        }
        i += 1;
    }
}

struct BodyScan<'a> {
    float_fields: &'a FloatNames,
    float_names: FloatNames,
    counts: SiteCounts,
    /// `(code, line, what)` float findings.
    floats: Vec<(String, usize, String)>,
}

/// Is the attribute group a `#[cfg(feature = "strict-invariants")]` gate?
pub(crate) fn attr_is_strict_gate(g: &ast::Group) -> bool {
    let text = ast::flatten(&g.trees);
    text.starts_with("cfg") && text.contains("strict-invariants")
}

/// Walk a body level, counting panic/index/div sites and collecting
/// float findings. Strict-invariants-gated statements are skipped whole.
fn walk_body(trees: &[Tree], scan: &mut BodyScan<'_>) {
    let tok_at = |i: usize| -> Option<&Tok> { trees.get(i).and_then(Tree::tok) };
    let mut i = 0usize;
    while i < trees.len() {
        // `#[cfg(feature = "strict-invariants")] <statement>` — skip the
        // attribute and the statement it gates (through `;` or a block).
        if tok_at(i).is_some_and(|t| t.is_punct("#")) {
            if let Some(Tree::Group(attr)) = trees.get(i + 1) {
                if attr.delim == Delim::Bracket && attr_is_strict_gate(attr) {
                    i += 2;
                    while i < trees.len() {
                        match &trees[i] {
                            Tree::Tok(t) if t.is_punct(";") => {
                                i += 1;
                                break;
                            }
                            Tree::Group(g) if g.delim == Delim::Brace => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    continue;
                }
            }
        }
        match &trees[i] {
            Tree::Group(g) => {
                // Postfix indexing: `expr[...]` — the bracket group follows
                // an identifier or a paren/bracket group. Array literals,
                // attributes (`#[..]`) and macros (`vec![..]`) follow
                // punctuation instead.
                if g.delim == Delim::Bracket {
                    let is_index = match i.checked_sub(1).map(|j| &trees[j]) {
                        Some(Tree::Tok(t)) => t.kind == TokKind::Ident && !is_expr_keyword(&t.text),
                        Some(Tree::Group(p)) => matches!(p.delim, Delim::Paren | Delim::Bracket),
                        None => false,
                    };
                    if is_index {
                        scan.counts.index_sites += 1;
                    }
                }
                walk_body(&g.trees, scan);
            }
            Tree::Tok(tok) => {
                let line = tok.line;
                match tok.text.as_str() {
                    "unwrap" | "expect" => {
                        let is_call = i > 0
                            && tok_at(i - 1).is_some_and(|t| t.is_punct("."))
                            && matches!(trees.get(i + 1), Some(Tree::Group(g)) if g.delim == Delim::Paren);
                        if is_call {
                            scan.counts.panic_sites += 1;
                            // `partial_cmp(..).unwrap()` — NaN-unsound total
                            // ordering; `total_cmp` is the fix.
                            let on_partial_cmp = i >= 3
                                && tok_at(i - 3).is_some_and(|t| t.is_ident("partial_cmp"))
                                && matches!(trees.get(i - 2), Some(Tree::Group(g)) if g.delim == Delim::Paren);
                            if on_partial_cmp {
                                scan.floats.push((
                                    "float/partial-cmp".to_string(),
                                    line,
                                    format!("`partial_cmp().{}()` panics/misorders on NaN — use `total_cmp`", tok.text),
                                ));
                            }
                        }
                    }
                    "panic" => {
                        if tok_at(i + 1).is_some_and(|t| t.is_punct("!")) {
                            scan.counts.panic_sites += 1;
                        }
                    }
                    // Operator arms must check the token kind: a char
                    // literal `'/'` or string literal `"/"` carries the
                    // same text as the punct and is not an operator.
                    "/" | "%" => {
                        if tok.kind == TokKind::Punct && !div_is_guarded(trees, i, scan) {
                            scan.counts.div_sites += 1;
                        }
                    }
                    "==" | "!=" => {
                        if tok.kind == TokKind::Punct && float_operands(trees, i, scan) {
                            scan.floats.push((
                                "float/eq".to_string(),
                                line,
                                format!("float `{}` comparison", tok.text),
                            ));
                        }
                    }
                    "par_iter" | "into_par_iter" | "par_chunks" | "par_bridge" => {
                        if let Some(red_line) = par_reduction_after(trees, i) {
                            scan.floats.push((
                                "float/ord".to_string(),
                                red_line,
                                format!(
                                    "order-sensitive reduction after `{}` — parallel \
                                     float accumulation is schedule-dependent",
                                    tok.text
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }
}

/// Keywords after which `[` opens an array literal, not an index.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "in" | "else" | "match" | "if" | "while" | "break" | "mut" | "ref" | "as"
    )
}

/// Span of trees around `center` bounded by statement/operand separators.
/// Brace groups (block bodies) also terminate the span: braces never
/// appear as punctuation at the token-tree level, and scanning through a
/// block would leak evidence from neighbouring statements
/// (`if n == 0 { .. } let mut scale = 0.0;` must not see the `0.0`).
fn operand_span(trees: &[Tree], center: usize) -> (usize, usize) {
    let stop = |tree: &Tree| match tree {
        Tree::Tok(t) => {
            matches!(t.text.as_str(), ";" | "," | "&&" | "||" | "=" | "=>")
                && t.kind == TokKind::Punct
        }
        Tree::Group(g) => g.delim == Delim::Brace,
    };
    let mut lo = center;
    while lo > 0 {
        if stop(&trees[lo - 1]) {
            break;
        }
        lo -= 1;
    }
    let mut hi = center + 1;
    while hi < trees.len() {
        if stop(&trees[hi]) {
            break;
        }
        hi += 1;
    }
    (lo, hi)
}

/// Float evidence within `lo..hi`: a float literal, an `f64`/`f32`
/// token, a float-typed local/parameter, or a `.field` access on a
/// float-typed field. Scalar names count anywhere; container names
/// (`Vec<f64>`, `&[f64]`, …) count only when immediately indexed, so
/// `xs.len() == n` stays clean while `xs[a] == xs[b]` is evidence.
fn span_has_float(trees: &[Tree], lo: usize, hi: usize, scan: &BodyScan<'_>) -> bool {
    for j in lo..hi {
        if let Tree::Tok(t) = &trees[j] {
            if t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32") {
                return true;
            }
            if t.kind == TokKind::Ident {
                let after_dot = j > 0 && trees[j - 1].tok().is_some_and(|p| p.is_punct("."));
                let indexed = trees
                    .get(j + 1)
                    .is_some_and(|n| matches!(n, Tree::Group(g) if g.delim == Delim::Bracket));
                let names = if after_dot {
                    scan.float_fields
                } else {
                    &scan.float_names
                };
                if names.scalars.contains(&t.text)
                    || (indexed && names.containers.contains(&t.text))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// A `/`/`%` at `i` is guarded (not counted) when the operands show
/// float evidence or the right-hand side is a nonzero integer literal.
fn div_is_guarded(trees: &[Tree], i: usize, scan: &BodyScan<'_>) -> bool {
    let (lo, hi) = operand_span(trees, i);
    if span_has_float(trees, lo, hi, scan) {
        return true;
    }
    if let Some(Tree::Tok(rhs)) = trees.get(i + 1) {
        if rhs.kind == TokKind::Int {
            let digits: String = rhs
                .text
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            return digits.parse::<u64>().map(|v| v != 0).unwrap_or(true)
                || rhs.text.starts_with("0x")
                || rhs.text.starts_with("0b")
                || rhs.text.starts_with("0o");
        }
    }
    false
}

/// Do the operands of the `==`/`!=` at `i` carry float evidence?
fn float_operands(trees: &[Tree], i: usize, scan: &BodyScan<'_>) -> bool {
    let (lo, hi) = operand_span(trees, i);
    span_has_float(trees, lo, hi, scan)
}

/// After a `par_iter`-family call at `i`, find an order-sensitive
/// reduction (`sum`/`fold`/`reduce`) in the same statement; returns its
/// line.
fn par_reduction_after(trees: &[Tree], i: usize) -> Option<usize> {
    let mut j = i + 1;
    while j < trees.len() {
        match &trees[j] {
            Tree::Tok(t) if t.is_punct(";") => return None,
            Tree::Tok(t) if t.is_ident("sum") || t.is_ident("fold") || t.is_ident("reduce") => {
                return Some(t.line);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_sites_counted_ast_accurately() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
fn f(x: Option<u32>) -> u32 {
    // .unwrap() in a comment does not count
    let s = ".unwrap() in a string";
    let _ = s;
    x.unwrap()
}
fn g() { panic!("boom"); }
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) -> u32 { x.unwrap() }
}
"#,
        );
        assert_eq!(a.counts["crates/fixture"].panic_sites, 2);
    }

    #[test]
    fn index_sites_exclude_literals_attrs_and_macros() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
fn f(xs: &[f64], i: usize) -> f64 {
    let arr = [1, 2, 3];
    let v = vec![4, 5];
    let _ = v;
    let _ = arr;
    xs[i]
}
"#,
        );
        assert_eq!(a.counts["crates/fixture"].index_sites, 1);
    }

    #[test]
    fn int_div_counted_float_and_const_divisor_skipped() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
fn f(a: usize, b: usize) -> usize {
    let half = a / 2;
    let frac = 1.0 / (a as f64);
    let _ = frac;
    half + a / b
}
"#,
        );
        assert_eq!(a.counts["crates/fixture"].div_sites, 1);
    }

    #[test]
    fn slash_in_char_and_string_literals_is_not_a_division() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            r#"
fn f(path: &str, unit: &str) -> String {
    let needle = format!("/{}/", unit.trim_matches('/'));
    let normalized = path.replace('\\', "/");
    let _ = normalized.contains(&needle);
    needle
}
"#,
        );
        assert_eq!(a.counts.get("crates/fixture").map_or(0, |c| c.div_sites), 0);
    }

    #[test]
    fn strict_gated_statements_are_skipped() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
fn f(xs: &[f64]) {
    #[cfg(feature = \"strict-invariants\")]
    crate::invariants::assert_finite(\"f\", xs).unwrap();
    let _ = xs;
}
",
        );
        assert!(a.counts.is_empty(), "{:?}", a.counts);
    }

    #[test]
    fn float_eq_flagged_and_legacy_allow_honored() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
fn f(x: f64) -> bool {
    let y = x * 2.0;
    y == 0.5
}
fn g(x: f64) -> bool {
    // lint:allow(float_cmp) exact sentinel
    x == 0.0
}
fn h(x: usize) -> bool { x == 5 }
",
        );
        let rendered = a.report.render();
        assert_eq!(rendered.matches("float/eq").count(), 1, "{rendered}");
        assert!(rendered.contains(":4:"), "{rendered}");
    }

    #[test]
    fn integer_eq_before_float_statement_is_clean() {
        // The operand span must stop at the if-body brace group: the
        // float evidence in the *next* statement belongs to it, not to
        // the integer comparison.
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
fn f(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut scale = 0.0f64;
    scale += n as f64;
    scale
}
fn g(x: Vec<f64>, d: usize) -> bool {
    if x.len() != d {
        return false;
    }
    let b: Vec<f64> = x.clone();
    b.is_empty()
}
",
        );
        let rendered = a.report.render();
        assert!(!rendered.contains("float/eq"), "{rendered}");
    }

    #[test]
    fn float_param_and_indexed_slice_are_evidence_len_is_not() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
fn scalar_param(x: f64) -> bool { x == 0.0 }
fn indexed_slice(xs: &[f64], i: usize, j: usize) -> bool {
    xs[i] == xs[j]
}
fn len_is_integer(xs: &[f64], n: usize) -> bool {
    xs.len() == n
}
",
        );
        let rendered = a.report.render();
        assert_eq!(rendered.matches("float/eq").count(), 2, "{rendered}");
        assert!(rendered.contains(":2:"), "{rendered}");
        assert!(rendered.contains(":4:"), "{rendered}");
    }

    #[test]
    fn classify_float_ty_tiers() {
        assert_eq!(classify_float_ty("f64"), Some(FloatTy::Scalar));
        assert_eq!(classify_float_ty("& mut f32"), Some(FloatTy::Scalar));
        assert_eq!(classify_float_ty("& 'a f64"), Some(FloatTy::Scalar));
        assert_eq!(classify_float_ty("Vec < f64 >"), Some(FloatTy::Container));
        assert_eq!(classify_float_ty("& [ f64 ]"), Some(FloatTy::Container));
        assert_eq!(classify_float_ty("usize"), None);
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged_total_cmp_clean() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
fn f(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
fn g(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
",
        );
        let rendered = a.report.render();
        assert_eq!(
            rendered.matches("float/partial-cmp").count(),
            1,
            "{rendered}"
        );
    }

    #[test]
    fn par_reduction_is_flagged() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
fn f(xs: &Vec<f64>) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}
",
        );
        assert!(
            a.report.render().contains("float/ord"),
            "{}",
            a.report.render()
        );
    }

    #[test]
    fn stale_allow_is_reported() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
// mtm-allow: wall-clock -- nothing here actually taints
fn f() -> u32 { 1 }
",
        );
        assert!(
            a.report.render().contains("annotation/stale"),
            "{}",
            a.report.render()
        );
    }

    #[test]
    fn float_allow_keys_suppress_and_count_as_used() {
        let a = analyze_source(
            "crates/fixture/src/lib.rs",
            "
fn f(x: f64) -> bool {
    // mtm-allow: float-eq -- exact sentinel comparison by design
    x == 0.0
}
",
        );
        assert!(a.report.is_empty(), "{}", a.report.render());
    }
}
