//! Determinism-taint analysis.
//!
//! The repo's scientific claim rests on bitwise determinism: serial,
//! parallel and resumed runs of the same experiment must journal the
//! same bytes. This pass flags every *nondeterminism source* that can
//! reach *journaled or measured values*, so a stray `Instant::now()` or
//! `HashMap` iteration cannot silently contaminate results.
//!
//! ## Model
//!
//! **Sinks** are the functions that construct journaled/measured values:
//! struct literals of the record types ([`SINK_TYPES`]: `TrialRecord`,
//! `Header`, `StepRecord`, `ExperimentResult`, …), `Record::…(…)` enum
//! construction, and every impl of the `Measure` trait's `measure`
//! method (the seam all measured throughput crosses).
//!
//! **Sources** are syntactic nondeterminism introductions, each tagged
//! with an allow key: `Instant::now`/`SystemTime::now`/`.elapsed()`
//! (`wall-clock`), `thread_rng`/`rand::random`/`from_entropy`/`OsRng`
//! (`rng`), iteration over `HashMap`/`HashSet`-typed fields or locals
//! (`hash-iter`), `thread::current()`/`ThreadId` (`thread-id`), and
//! pointer/address observation (`{:p}`, `addr_of`, `as *const` casts —
//! `addr`).
//!
//! **Propagation** is function-level over the call graph: a source is
//! reportable when it occurs inside the *callee closure* of a sink
//! function — the sink itself or anything it (transitively) calls, i.e.
//! any function whose return values or side effects are in scope while a
//! record is being built. This is deliberately conservative (no
//! per-value dataflow), so sanctioned sites carry an explicit, audited
//! annotation instead of being silently dropped:
//!
//! ```text
//! // mtm-allow: wall-clock -- optimizer_time_s is the sanctioned Fig. 7 metric
//! ```
//!
//! An annotation above a `fn` signature covers the whole function; one
//! inside a body covers its own line and the next. Every annotation must
//! carry a `-- reason` and must suppress at least one reportable source
//! (otherwise it is reported as `annotation/stale` — dead allows rot the
//! audit trail).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{CrateAst, FileAst, Tok, TokKind, Tree};
use crate::callgraph::{CallGraph, FnId};
use crate::diag::{Diag, Report};

/// Allow keys adjudicated by the taint pass.
pub const TAINT_KEYS: &[&str] = &["wall-clock", "rng", "hash-iter", "thread-id", "addr"];

/// Allow keys adjudicated by the float-sanity pass (see
/// [`crate::analyze`]).
pub const FLOAT_KEYS: &[&str] = &["float-eq", "float-ord"];

/// Allow keys adjudicated by the hot-path allocation pass (see
/// [`crate::hotpath`]).
pub const ALLOC_KEYS: &[&str] = &["alloc"];

/// Allow keys adjudicated by the lock-region pass (see
/// [`crate::lockregion`]).
pub const LOCK_KEYS: &[&str] = &["lock"];

/// Struct types whose construction marks a function as a sink.
pub const SINK_TYPES: &[&str] = &[
    "Header",
    "TrialRecord",
    "ConfirmRecord",
    "PassDone",
    "StepRecord",
    "PassResult",
    "ExperimentResult",
    "Cell",
    "Grid",
];

/// Enum types whose variant construction (`Record::Trial(..)`) marks a
/// sink. Kept separate from [`SINK_TYPES`] so common method paths like
/// `Cell::new` never count as construction. `Event` covers the mtm-obs
/// trace schema: recording a wall-clock- or rng-tainted value into a
/// trace is exactly the leak the determinism contract forbids.
pub const SINK_ENUMS: &[&str] = &["Record", "Event"];

/// Methods that observe collection iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// One parsed `mtm-allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// File the annotation lives in.
    pub file: String,
    /// Line of the comment.
    pub line: usize,
    /// The allow keys it grants.
    pub keys: Vec<String>,
    /// Set when the annotation suppressed at least one finding.
    pub used: bool,
}

/// Parse every `mtm-allow` annotation in a file, reporting grammar
/// violations (missing reason, unknown key) as diagnostics. Malformed
/// annotations are still returned so they don't double-report as stale.
pub fn collect_allows(file: &FileAst, report: &mut Report) -> Vec<Allow> {
    let mut out = Vec::new();
    let valid: Vec<&str> = TAINT_KEYS
        .iter()
        .chain(FLOAT_KEYS)
        .chain(ALLOC_KEYS)
        .chain(LOCK_KEYS)
        .copied()
        .collect();
    for c in &file.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("mtm-allow:") else {
            continue;
        };
        let (keys_part, reason) = match rest.split_once("--") {
            Some((k, r)) => (k, r.trim()),
            None => (rest, ""),
        };
        let keys: Vec<String> = keys_part
            .split(',')
            .map(|k| k.trim().to_string())
            .filter(|k| !k.is_empty())
            .collect();
        if keys.is_empty() {
            report.push(Diag::new(
                "annotation/malformed",
                &file.rel,
                c.line,
                "mtm-allow annotation lists no keys",
            ));
            continue;
        }
        for key in &keys {
            if !valid.contains(&key.as_str()) {
                report.push(Diag::new(
                    "annotation/unknown-key",
                    &file.rel,
                    c.line,
                    format!(
                        "unknown mtm-allow key `{key}` (valid: {})",
                        valid.join(", ")
                    ),
                ));
            }
        }
        if reason.is_empty() {
            report.push(Diag::new(
                "annotation/missing-reason",
                &file.rel,
                c.line,
                "mtm-allow annotation needs `-- <reason>`",
            ));
            continue;
        }
        out.push(Allow {
            file: file.rel.clone(),
            line: c.line,
            keys,
            used: false,
        });
    }
    out
}

/// Does `allow` cover a finding with `key` at `file:line` inside a fn
/// spanning `fn_line..=fn_end`? Fn-level annotations sit within three
/// lines above the signature (attributes/doc lines in between are fine);
/// line-level annotations cover their own line and the next.
pub fn allow_covers(
    allow: &Allow,
    key: &str,
    file: &str,
    line: usize,
    fn_line: usize,
    fn_end: usize,
) -> bool {
    if allow.file != file || !allow.keys.iter().any(|k| k == key) {
        return false;
    }
    let fn_level = allow.line < fn_line && fn_line.saturating_sub(allow.line) <= 3;
    let line_level = allow.line >= fn_line
        && allow.line <= fn_end
        && (line == allow.line || line == allow.line + 1);
    fn_level || line_level
}

/// One nondeterminism-source occurrence.
#[derive(Debug, Clone)]
pub struct SourceInst {
    /// Allow key classifying the source.
    pub key: &'static str,
    /// What was seen, for the message (e.g. `Instant::now`).
    pub what: String,
    /// File of the occurrence.
    pub file: String,
    /// Line of the occurrence.
    pub line: usize,
    /// Function containing it.
    pub fn_id: FnId,
}

/// Field names whose declared type is hash-ordered, workspace-wide.
pub fn hash_fields(crates: &[CrateAst]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for krate in crates {
        for file in &krate.files {
            for field in &file.fields {
                if field.ty.contains("HashMap") || field.ty.contains("HashSet") {
                    out.insert(field.field.clone());
                }
            }
        }
    }
    out
}

/// Functions that construct sink values (see module docs).
pub fn sink_fns(g: &CallGraph) -> Vec<FnId> {
    let mut out = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        let is_measure_impl = f.name == "measure" && f.trait_name.as_deref() == Some("Measure");
        if is_measure_impl || body_constructs_sink(&f.body) {
            out.push(id);
        }
    }
    out
}

fn body_constructs_sink(trees: &[Tree]) -> bool {
    let mut found = false;
    scan_sinks(trees, &mut found);
    found
}

fn scan_sinks(trees: &[Tree], found: &mut bool) {
    for (i, tree) in trees.iter().enumerate() {
        if *found {
            return;
        }
        match tree {
            Tree::Group(g) => scan_sinks(&g.trees, found),
            Tree::Tok(tok) if tok.kind == TokKind::Ident => {
                // `SinkType { .. }` struct literal.
                if SINK_TYPES.contains(&tok.text.as_str()) {
                    if let Some(Tree::Group(g)) = trees.get(i + 1) {
                        if g.delim == crate::ast::Delim::Brace {
                            *found = true;
                            return;
                        }
                    }
                }
                // `SinkEnum::Variant( .. )` construction.
                if SINK_ENUMS.contains(&tok.text.as_str())
                    && trees
                        .get(i + 1)
                        .and_then(Tree::tok)
                        .is_some_and(|t| t.is_punct("::"))
                    && trees
                        .get(i + 2)
                        .and_then(Tree::tok)
                        .is_some_and(|t| t.kind == TokKind::Ident)
                    && matches!(trees.get(i + 3), Some(Tree::Group(g)) if g.delim == crate::ast::Delim::Paren)
                {
                    *found = true;
                    return;
                }
            }
            Tree::Tok(_) => {}
        }
    }
}

/// Locals bound to hash-ordered collections within a body: `let name` …
/// mentioning `HashMap`/`HashSet` before the statement ends.
fn hash_locals(trees: &[Tree], out: &mut BTreeSet<String>) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group(g) => hash_locals(&g.trees, out),
            Tree::Tok(tok) if tok.is_ident("let") => {
                // Name: the next plain ident (skip `mut`).
                let mut j = i + 1;
                let mut name: Option<String> = None;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Tok(t) if t.is_ident("mut") => {}
                        Tree::Tok(t) if t.kind == TokKind::Ident => {
                            name = Some(t.text.clone());
                            break;
                        }
                        _ => break,
                    }
                    j += 1;
                }
                // Scan to the end of the statement for hash types.
                let mut is_hash = false;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Tok(t) if t.is_punct(";") => break,
                        Tree::Tok(t) if t.is_ident("HashMap") || t.is_ident("HashSet") => {
                            is_hash = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if is_hash {
                    if let Some(name) = name {
                        out.insert(name);
                    }
                }
                i = j;
            }
            Tree::Tok(_) => {}
        }
        i += 1;
    }
}

/// Scan one function body for nondeterminism sources.
pub fn find_sources(
    body: &[Tree],
    file: &str,
    fn_id: FnId,
    hash_fields: &BTreeSet<String>,
    out: &mut Vec<SourceInst>,
) {
    let mut locals = BTreeSet::new();
    hash_locals(body, &mut locals);
    scan_sources(body, file, fn_id, hash_fields, &locals, out);
}

fn push(
    out: &mut Vec<SourceInst>,
    key: &'static str,
    what: &str,
    file: &str,
    line: usize,
    fn_id: FnId,
) {
    out.push(SourceInst {
        key,
        what: what.to_string(),
        file: file.to_string(),
        line,
        fn_id,
    });
}

fn scan_sources(
    trees: &[Tree],
    file: &str,
    fn_id: FnId,
    hash_fields: &BTreeSet<String>,
    locals: &BTreeSet<String>,
    out: &mut Vec<SourceInst>,
) {
    let tok_at = |i: usize| trees.get(i).and_then(Tree::tok);
    for (i, tree) in trees.iter().enumerate() {
        match tree {
            Tree::Group(g) => scan_sources(&g.trees, file, fn_id, hash_fields, locals, out),
            Tree::Tok(tok) => {
                let line = tok.line;
                match tok.text.as_str() {
                    // -- wall-clock --------------------------------------
                    "Instant" | "SystemTime" => {
                        if tok_at(i + 1).is_some_and(|t| t.is_punct("::"))
                            && tok_at(i + 2).is_some_and(|t| t.is_ident("now"))
                        {
                            push(
                                out,
                                "wall-clock",
                                &format!("{}::now", tok.text),
                                file,
                                line,
                                fn_id,
                            );
                        }
                    }
                    "elapsed" => {
                        if i > 0
                            && tok_at(i - 1).is_some_and(|t| t.is_punct("."))
                            && matches!(trees.get(i + 1), Some(Tree::Group(g)) if g.delim == crate::ast::Delim::Paren)
                        {
                            push(out, "wall-clock", ".elapsed()", file, line, fn_id);
                        }
                    }
                    // -- rng ---------------------------------------------
                    "thread_rng" | "from_entropy" | "OsRng" => {
                        push(out, "rng", &tok.text, file, line, fn_id);
                    }
                    "random" => {
                        if i > 0
                            && tok_at(i - 1).is_some_and(|t| t.is_punct("::"))
                            && i > 1
                            && tok_at(i - 2).is_some_and(|t| t.is_ident("rand"))
                        {
                            push(out, "rng", "rand::random", file, line, fn_id);
                        }
                    }
                    // -- thread-id ---------------------------------------
                    "thread" => {
                        if tok_at(i + 1).is_some_and(|t| t.is_punct("::"))
                            && tok_at(i + 2).is_some_and(|t| t.is_ident("current"))
                        {
                            push(out, "thread-id", "thread::current()", file, line, fn_id);
                        }
                    }
                    "ThreadId" => {
                        push(out, "thread-id", "ThreadId", file, line, fn_id);
                    }
                    // -- addr --------------------------------------------
                    "addr_of" | "addr_of_mut" => {
                        push(out, "addr", &tok.text, file, line, fn_id);
                    }
                    "as" => {
                        if tok_at(i + 1).is_some_and(|t| t.is_punct("*"))
                            && tok_at(i + 2)
                                .is_some_and(|t| t.is_ident("const") || t.is_ident("mut"))
                        {
                            push(out, "addr", "as-pointer cast", file, line, fn_id);
                        }
                    }
                    // -- hash-iter: explicit iteration methods -----------
                    m if ITER_METHODS.contains(&m) => {
                        let is_method_call = i > 0
                            && tok_at(i - 1).is_some_and(|t| t.is_punct("."))
                            && matches!(trees.get(i + 1), Some(Tree::Group(g)) if g.delim == crate::ast::Delim::Paren);
                        if is_method_call {
                            let recv = i.checked_sub(2).and_then(tok_at);
                            if recv.is_some_and(|r| {
                                r.kind == TokKind::Ident
                                    && (hash_fields.contains(&r.text) || locals.contains(&r.text))
                            }) {
                                let recv = recv.map(|r| r.text.clone()).unwrap_or_default();
                                push(
                                    out,
                                    "hash-iter",
                                    &format!("{recv}.{m}()"),
                                    file,
                                    line,
                                    fn_id,
                                );
                            }
                        }
                    }
                    // -- hash-iter: `for pat in <expr> { .. }` ------------
                    "for" => {
                        if let Some(inst) = for_loop_hash_iter(trees, i, hash_fields, locals) {
                            push(out, "hash-iter", &inst.0, file, inst.1, fn_id);
                        }
                    }
                    _ => {
                        // `{:p}` pointer formatting inside string literals.
                        if tok.kind == TokKind::Str && tok.text.contains("{:p}") {
                            push(out, "addr", "{:p} formatting", file, line, fn_id);
                        }
                    }
                }
            }
        }
    }
}

/// For a `for` keyword at `trees[i]`, detect iteration over a
/// hash-ordered field/local: the last identifier of the iterated
/// expression (before the loop body brace) names one.
fn for_loop_hash_iter(
    trees: &[Tree],
    i: usize,
    hash_fields: &BTreeSet<String>,
    locals: &BTreeSet<String>,
) -> Option<(String, usize)> {
    // Find `in` after the pattern, then the body brace.
    let mut j = i + 1;
    while j < trees.len() {
        if trees[j].tok().is_some_and(|t| t.is_ident("in")) {
            break;
        }
        if matches!(&trees[j], Tree::Group(g) if g.delim == crate::ast::Delim::Brace) {
            return None; // no `in` before a brace: not a for loop we parse
        }
        j += 1;
    }
    let in_at = j;
    if in_at >= trees.len() {
        return None;
    }
    let mut last_ident: Option<&Tok> = None;
    j = in_at + 1;
    while j < trees.len() {
        match &trees[j] {
            Tree::Group(g) if g.delim == crate::ast::Delim::Brace => break,
            Tree::Group(_) => {}
            Tree::Tok(t) if t.kind == TokKind::Ident => last_ident = Some(t),
            Tree::Tok(_) => {}
        }
        j += 1;
    }
    let t = last_ident?;
    (hash_fields.contains(&t.text) || locals.contains(&t.text))
        .then(|| (format!("for … in {}", t.text), t.line))
}

/// Run the taint pass.
///
/// `allows` carry their `used` flags across passes; the caller emits
/// `annotation/stale` afterwards.
pub fn run_taint(g: &CallGraph, crates: &[CrateAst], allows: &mut [Allow], report: &mut Report) {
    let fields = hash_fields(crates);
    let sinks = sink_fns(g);
    // BFS over callees from every sink, remembering which sink first
    // reached each function (for the diagnostic message).
    let mut via: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: Vec<FnId> = Vec::new();
    for &s in &sinks {
        via.entry(s).or_insert(s);
        queue.push(s);
    }
    while let Some(f) = queue.pop() {
        let origin = via[&f];
        for &callee in &g.callees[f] {
            if let std::collections::btree_map::Entry::Vacant(e) = via.entry(callee) {
                e.insert(origin);
                queue.push(callee);
            }
        }
    }

    let mut instances: Vec<SourceInst> = Vec::new();
    for (&fn_id, _) in &via {
        let f = &g.fns[fn_id];
        find_sources(&f.body, &f.file, fn_id, &fields, &mut instances);
    }

    for inst in &instances {
        let f = &g.fns[inst.fn_id];
        let covered = allows
            .iter_mut()
            .find(|a| allow_covers(a, inst.key, &inst.file, inst.line, f.line, f.end_line));
        if let Some(a) = covered {
            a.used = true;
            continue;
        }
        let sink = &g.fns[via[&inst.fn_id]];
        report.push(Diag::new(
            &format!("taint/{}", inst.key),
            &inst.file,
            inst.line,
            format!(
                "nondeterminism source `{}` in `{}` can reach journaled output \
                 (sink `{}`); fix it or annotate `// mtm-allow: {} -- <why>`",
                inst.what, f.qual, sink.qual, inst.key
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_file;

    fn crate_of(src: &str) -> CrateAst {
        CrateAst {
            unit: "crates/x".into(),
            files: vec![parse_file("x.rs", src)],
            orphans: vec![],
        }
    }

    fn taint(src: &str) -> (Report, Vec<Allow>) {
        let krate = crate_of(src);
        let g = CallGraph::build(std::slice::from_ref(&krate));
        let mut report = Report::default();
        let mut allows = collect_allows(&krate.files[0], &mut report);
        run_taint(&g, std::slice::from_ref(&krate), &mut allows, &mut report);
        (report, allows)
    }

    const SINK_PREAMBLE: &str = "
pub struct StepRecord { pub v: f64 }
";

    #[test]
    fn source_in_sink_fn_is_flagged() {
        let src = format!(
            "{SINK_PREAMBLE}
fn build() -> StepRecord {{
    let t = Instant::now();
    StepRecord {{ v: t.elapsed().as_secs_f64() }}
}}
"
        );
        let (report, _) = taint(&src);
        assert!(
            report.render().contains("taint/wall-clock"),
            "{}",
            report.render()
        );
        assert!(report.render().contains("Instant::now"));
    }

    #[test]
    fn source_in_callee_of_sink_is_flagged() {
        let src = format!(
            "{SINK_PREAMBLE}
fn helper() -> f64 {{ thread_rng() }}
fn build() -> StepRecord {{
    StepRecord {{ v: helper() }}
}}
"
        );
        let (report, _) = taint(&src);
        assert!(report.render().contains("taint/rng"), "{}", report.render());
        assert!(report.render().contains("helper"));
    }

    #[test]
    fn source_outside_sink_closure_is_not_flagged() {
        let src = format!(
            "{SINK_PREAMBLE}
fn unrelated_timer() {{ let _ = Instant::now(); }}
fn build() -> StepRecord {{ StepRecord {{ v: 0.0 }} }}
"
        );
        let (report, _) = taint(&src);
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn fn_level_allow_suppresses_and_is_used() {
        let src = format!(
            "{SINK_PREAMBLE}
// mtm-allow: wall-clock -- timing is display-only
fn build() -> StepRecord {{
    let _ = Instant::now();
    StepRecord {{ v: 0.0 }}
}}
"
        );
        let (report, allows) = taint(&src);
        assert!(report.is_empty(), "{}", report.render());
        assert!(allows[0].used);
    }

    #[test]
    fn line_level_allow_covers_next_line_only() {
        let src = format!(
            "{SINK_PREAMBLE}
fn build() -> StepRecord {{
    // mtm-allow: wall-clock -- first site sanctioned
    let _ = Instant::now();
    let _ = SystemTime::now();
    StepRecord {{ v: 0.0 }}
}}
"
        );
        let (report, _) = taint(&src);
        let rendered = report.render();
        assert!(!rendered.contains("Instant::now"), "{rendered}");
        assert!(rendered.contains("SystemTime::now"), "{rendered}");
    }

    #[test]
    fn missing_reason_and_unknown_key_are_reported() {
        let src = "
// mtm-allow: wall-clock
fn a() {}
// mtm-allow: warp-drive -- because
fn b() {}
";
        let file = parse_file("x.rs", src);
        let mut report = Report::default();
        let allows = collect_allows(&file, &mut report);
        let rendered = report.render();
        assert!(rendered.contains("annotation/missing-reason"), "{rendered}");
        assert!(rendered.contains("annotation/unknown-key"), "{rendered}");
        // The unknown-key annotation still parses (reason present).
        assert_eq!(allows.len(), 1);
    }

    #[test]
    fn hash_field_iteration_is_flagged() {
        let src = format!(
            "{SINK_PREAMBLE}
pub struct State {{ pub trials: HashMap<u64, f64> }}
fn build(s: &State) -> StepRecord {{
    let mut v = 0.0;
    for (_, t) in &s.trials {{ v += t; }}
    StepRecord {{ v }}
}}
"
        );
        let (report, _) = taint(&src);
        assert!(
            report.render().contains("taint/hash-iter"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn hash_local_method_iteration_is_flagged() {
        let src = format!(
            "{SINK_PREAMBLE}
fn build() -> StepRecord {{
    let memo: HashMap<u64, f64> = HashMap::new();
    let v = memo.values().sum();
    StepRecord {{ v }}
}}
"
        );
        let (report, _) = taint(&src);
        assert!(
            report.render().contains("taint/hash-iter"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn btree_iteration_is_clean() {
        let src = format!(
            "{SINK_PREAMBLE}
pub struct State {{ pub trials: BTreeMap<u64, f64> }}
fn build(s: &State) -> StepRecord {{
    let mut v = 0.0;
    for (_, t) in &s.trials {{ v += t; }}
    let w: Vec<f64> = s.trials.values().cloned().collect();
    StepRecord {{ v: v + w.len() as f64 }}
}}
"
        );
        let (report, _) = taint(&src);
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn measure_impl_is_a_sink() {
        let src = "
pub trait Measure { fn measure(&mut self) -> f64; }
pub struct M;
impl Measure for M {
    fn measure(&mut self) -> f64 { noisy() }
}
fn noisy() -> f64 { thread_rng() }
";
        let (report, _) = taint(src);
        assert!(report.render().contains("taint/rng"), "{}", report.render());
    }

    #[test]
    fn record_enum_construction_is_a_sink() {
        let src = "
pub enum Record { Trial(u32) }
fn journal() -> Record {
    let _ = Instant::now();
    Record::Trial(1)
}
";
        let (report, _) = taint(src);
        assert!(
            report.render().contains("taint/wall-clock"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn cell_new_is_not_a_sink() {
        // `Cell::new` is std; only `Cell { .. }` literals count.
        let src = "
fn f() {
    let _ = Instant::now();
    let _c = Cell::new(1);
}
";
        let (report, _) = taint(src);
        assert!(report.is_empty(), "{}", report.render());
    }
}
