//! A self-contained Rust surface parser: lexer, token trees, items.
//!
//! The workspace has no crates.io access, so instead of `syn` the
//! analyzer brings its own three-stage front end:
//!
//! 1. [`lex`] — a character-accurate lexer producing [`Tok`]s with line
//!    numbers, plus the comment stream (annotations like `mtm-allow:`
//!    live in comments). Strings (plain, raw, byte), char-vs-lifetime
//!    disambiguation, nested block comments and multi-char operators are
//!    handled exactly, so `".unwrap()"` in a string literal is a literal,
//!    not a panic site.
//! 2. [`to_trees`] — token trees: `()`/`[]`/`{}` groups are matched into
//!    nested [`Tree`]s, which is what makes postfix indexing, macro
//!    arguments and attribute payloads structurally recognizable.
//! 3. [`extract_items`] / [`parse_crate`] — item extraction with full
//!    module resolution: inline `mod` blocks recurse, out-of-line
//!    `mod x;` declarations are resolved to `x.rs` / `x/mod.rs` (or a
//!    `#[path]` override) and walked, `impl`/`trait` blocks qualify their
//!    methods, and `#[cfg(test)]` subtrees are marked so every pass can
//!    skip them.
//!
//! This is a *surface* parser: it does not resolve types or expand
//! macros. The passes built on top (call graph, taint, panic counting)
//! are designed around that boundary — see DESIGN.md §10.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`) — kept distinct from char literals.
    Lifetime,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String literal (plain, raw or byte); `text` holds the *contents*.
    Str,
    /// Char literal.
    Char,
    /// Punctuation; multi-char operators (`::`, `==`, `->`, …) arrive as
    /// one token.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (string/char literals hold their contents).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment, with its starting line. Doc comments are included.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the code tokens and the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-char operators, longest first (greedy matching).
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lex Rust source into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && next == '/' {
            let start = line;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && chars[j] != '\n' {
                text.push(chars[j]);
                j += 1;
            }
            out.comments.push(Comment { line: start, text });
            i = j;
            continue;
        }
        if c == '/' && next == '*' {
            let start = line;
            let mut depth = 1u32;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    text.push(chars[j]);
                    j += 1;
                }
            }
            out.comments.push(Comment { line: start, text });
            i = j;
            continue;
        }
        // Raw / byte strings: r"..", r#".."#, b"..", br#".."#.
        if (c == 'r' || c == 'b') && matches!(next, '"' | '#' | 'r') {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let raw = c == 'r' || chars.get(i + 1) == Some(&'r');
            let mut hashes = 0usize;
            while raw && chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') && (raw || c == 'b') {
                j += 1;
                let start_line = line;
                let mut text = String::new();
                while j < n {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    if raw {
                        if chars[j] == '"' {
                            let closed = (0..hashes).all(|k| chars.get(j + 1 + k) == Some(&'#'));
                            if closed {
                                j += 1 + hashes;
                                break;
                            }
                        }
                        text.push(chars[j]);
                        j += 1;
                    } else {
                        // Byte string with escapes.
                        if chars[j] == '\\' {
                            j += 2;
                            continue;
                        }
                        if chars[j] == '"' {
                            j += 1;
                            break;
                        }
                        text.push(chars[j]);
                        j += 1;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
                i = j;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Plain strings.
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            let mut text = String::new();
            while j < n {
                if chars[j] == '\\' {
                    if let Some(&esc) = chars.get(j + 1) {
                        text.push('\\');
                        text.push(esc);
                        if esc == '\n' {
                            line += 1;
                        }
                    }
                    j += 2;
                    continue;
                }
                if chars[j] == '"' {
                    j += 1;
                    break;
                }
                if chars[j] == '\n' {
                    line += 1;
                }
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if next == '\\' {
                // Escaped char literal: skip to the closing quote.
                let mut j = i + 2;
                while j < n && chars[j] != '\'' && chars[j] != '\n' {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: String::from("\\"),
                    line,
                });
                i = j + 1;
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: next.to_string(),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime: 'ident (no closing quote).
            let mut j = i + 1;
            let mut text = String::from("'");
            while j < n && is_ident_cont(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Lifetime,
                text,
                line,
            });
            i = j;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start_line = line;
            let mut j = i;
            let mut text = String::new();
            let hex_like = c == '0' && matches!(next, 'x' | 'X' | 'o' | 'O' | 'b' | 'B');
            if hex_like {
                text.push(chars[j]);
                text.push(chars[j + 1]);
                j += 2;
                while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    text.push(chars[j]);
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Int,
                    text,
                    line: start_line,
                });
                i = j;
                continue;
            }
            let mut is_float = false;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                text.push(chars[j]);
                j += 1;
            }
            // Fractional part: a dot NOT followed by another dot (range)
            // or an identifier start (method call on an int literal).
            if j < n
                && chars[j] == '.'
                && chars
                    .get(j + 1)
                    .is_none_or(|&d| !is_ident_start(d) && d != '.')
            {
                is_float = true;
                text.push('.');
                j += 1;
                while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                    text.push(chars[j]);
                    j += 1;
                }
            }
            // Exponent.
            if j < n && matches!(chars[j], 'e' | 'E') {
                let sign = matches!(chars.get(j + 1), Some(&'+') | Some(&'-'));
                let digit_at = if sign { j + 2 } else { j + 1 };
                if chars.get(digit_at).is_some_and(|d| d.is_ascii_digit()) {
                    is_float = true;
                    text.push(chars[j]);
                    j += 1;
                    if sign {
                        text.push(chars[j]);
                        j += 1;
                    }
                    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                        text.push(chars[j]);
                        j += 1;
                    }
                }
            }
            // Suffix (u32, f64, usize, ...).
            let suffix_start = j;
            while j < n && is_ident_cont(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            let suffix: String = chars[suffix_start..j].iter().collect();
            if suffix == "f32" || suffix == "f64" {
                is_float = true;
            }
            out.tokens.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut j = i;
            let mut text = String::new();
            while j < n && is_ident_cont(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            i = j;
            continue;
        }
        // Multi-char operators, greedy.
        let mut matched = false;
        for op in OPERATORS {
            let oplen = op.len();
            if i + oplen <= n && chars[i..i + oplen].iter().collect::<String>() == **op {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += oplen;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Group delimiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( ... )`
    Paren,
    /// `[ ... ]`
    Bracket,
    /// `{ ... }`
    Brace,
}

/// A token tree: a leaf token or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single non-delimiter token.
    Tok(Tok),
    /// A delimited group of trees.
    Group(Group),
}

impl Tree {
    /// The leaf token, if this is one.
    pub fn tok(&self) -> Option<&Tok> {
        match self {
            Tree::Tok(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Group(g) => Some(g),
            Tree::Tok(_) => None,
        }
    }

    /// Source line of this tree's first token.
    pub fn line(&self) -> usize {
        match self {
            Tree::Tok(t) => t.line,
            Tree::Group(g) => g.line,
        }
    }
}

/// A delimited group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Which delimiter pair.
    pub delim: Delim,
    /// Line of the opening delimiter.
    pub line: usize,
    /// Line of the closing delimiter.
    pub close_line: usize,
    /// The trees inside.
    pub trees: Vec<Tree>,
}

/// Build token trees from a flat token stream. Tolerant of unbalanced
/// delimiters (closes open groups at end of input, drops stray closers)
/// so a half-written file still parses to something scannable.
pub fn to_trees(tokens: Vec<Tok>) -> Vec<Tree> {
    // Stack of (delim, open_line, collected trees).
    let mut stack: Vec<(Delim, usize, Vec<Tree>)> = Vec::new();
    let mut top: Vec<Tree> = Vec::new();
    for tok in tokens {
        let delim_open = match tok.text.as_str() {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        };
        if tok.kind == TokKind::Punct {
            if let Some(d) = delim_open {
                stack.push((d, tok.line, Vec::new()));
                continue;
            }
            let delim_close = match tok.text.as_str() {
                ")" => Some(Delim::Paren),
                "]" => Some(Delim::Bracket),
                "}" => Some(Delim::Brace),
                _ => None,
            };
            if let Some(d) = delim_close {
                // Pop the innermost matching group; drop stray closers.
                if let Some((open_delim, open_line, trees)) = stack.pop() {
                    let group = Tree::Group(Group {
                        delim: open_delim,
                        line: open_line,
                        close_line: tok.line,
                        trees,
                    });
                    match stack.last_mut() {
                        Some((_, _, parent)) => parent.push(group),
                        None => top.push(group),
                    }
                    let _ = d;
                }
                continue;
            }
        }
        match stack.last_mut() {
            Some((_, _, trees)) => trees.push(Tree::Tok(tok)),
            None => top.push(Tree::Tok(tok)),
        }
    }
    // Close any unbalanced groups at EOF.
    while let Some((delim, open_line, trees)) = stack.pop() {
        let close_line = trees.last().map_or(open_line, Tree::line);
        let group = Tree::Group(Group {
            delim,
            line: open_line,
            close_line,
            trees,
        });
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(group),
            None => top.push(group),
        }
    }
    top
}

/// One `fn` item with its context.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Qualified name within the crate: `module::Type::name`.
    pub qual: String,
    /// Workspace-relative file.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Last body line (closing brace).
    pub end_line: usize,
    /// Declared `pub` (not `pub(crate)`).
    pub is_pub: bool,
    /// Under a `#[cfg(test)]` item or module.
    pub in_test: bool,
    /// Enclosing `impl`/`trait` type name, if any.
    pub impl_type: Option<String>,
    /// Trait being implemented (`impl Trait for Type`).
    pub trait_name: Option<String>,
    /// Argument-list token trees (the parenthesised parameter group).
    pub params: Vec<Tree>,
    /// Body token trees (empty for bodyless trait methods).
    pub body: Vec<Tree>,
}

/// One struct field (for type-informed heuristics like HashMap-iteration
/// and float-field comparison detection).
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Owning struct name.
    pub strukt: String,
    /// Field name.
    pub field: String,
    /// Flattened type text, e.g. `HashMap < u64 , f64 >`.
    pub ty: String,
}

/// An out-of-line `mod name;` declaration.
#[derive(Debug, Clone)]
pub struct SubMod {
    /// Module name.
    pub name: String,
    /// `#[path = "..."]` override, relative to the declaring file's dir.
    pub path_override: Option<String>,
    /// Declared under `#[cfg(test)]`.
    pub in_test: bool,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// Workspace-relative path.
    pub rel: String,
    /// All functions (including test-marked ones; passes filter).
    pub fns: Vec<FnItem>,
    /// All named struct fields.
    pub fields: Vec<FieldItem>,
    /// Out-of-line module declarations.
    pub submods: Vec<SubMod>,
    /// Comment stream (annotations, SAFETY notes).
    pub comments: Vec<Comment>,
}

/// Flatten trees back to space-separated token text (for type strings
/// and diagnostics).
pub fn flatten(trees: &[Tree]) -> String {
    let mut out = String::new();
    for tree in trees {
        match tree {
            Tree::Tok(t) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                match t.kind {
                    TokKind::Str => {
                        out.push('"');
                        out.push_str(&t.text);
                        out.push('"');
                    }
                    _ => out.push_str(&t.text),
                }
            }
            Tree::Group(g) => {
                let (open, close) = match g.delim {
                    Delim::Paren => ("(", ")"),
                    Delim::Bracket => ("[", "]"),
                    Delim::Brace => ("{", "}"),
                };
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(open);
                let inner = flatten(&g.trees);
                if !inner.is_empty() {
                    out.push(' ');
                    out.push_str(&inner);
                    out.push(' ');
                }
                out.push_str(close);
            }
        }
    }
    out
}

/// Does an attribute group's payload mark a `#[cfg(test)]` item?
fn attr_is_cfg_test(attr: &Group) -> bool {
    let text = flatten(&attr.trees);
    text.starts_with("cfg") && text.contains("test") && !text.contains("feature")
}

/// Extract a `#[path = "..."]` override from an attribute payload.
fn attr_path_override(attr: &Group) -> Option<String> {
    let mut it = attr.trees.iter();
    let first = it.next()?.tok()?;
    if !first.is_ident("path") {
        return None;
    }
    let eq = it.next()?.tok()?;
    if !eq.is_punct("=") {
        return None;
    }
    let lit = it.next()?.tok()?;
    (lit.kind == TokKind::Str).then(|| lit.text.clone())
}

/// Walk-state for item extraction.
struct ItemCtx<'a> {
    rel: &'a str,
    module: Vec<String>,
    impl_type: Option<String>,
    trait_name: Option<String>,
    in_test: bool,
}

/// Extract items from a tree slice into `out`.
pub fn extract_items(trees: &[Tree], rel: &str, out: &mut FileAst) {
    let mut ctx = ItemCtx {
        rel,
        module: Vec::new(),
        impl_type: None,
        trait_name: None,
        in_test: false,
    };
    walk_items(trees, &mut ctx, out);
}

/// Rust keywords that terminate a type/path scan.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "fn" | "pub"
            | "mod"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "use"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "where"
            | "for"
            | "type"
            | "let"
            | "async"
            | "dyn"
    )
}

fn walk_items(trees: &[Tree], ctx: &mut ItemCtx<'_>, out: &mut FileAst) {
    let mut i = 0usize;
    let mut pending_test = false;
    let mut pending_path: Option<String> = None;
    let mut pending_pub = false;
    let mut pending_pub_restricted = false;
    while i < trees.len() {
        let tree = &trees[i];
        let tok = match tree {
            Tree::Tok(t) => t,
            Tree::Group(_) => {
                i += 1;
                continue;
            }
        };
        match tok.text.as_str() {
            "#" => {
                // Attribute: `#[...]` (or inner `#![...]`).
                let mut j = i + 1;
                if trees
                    .get(j)
                    .and_then(Tree::tok)
                    .is_some_and(|t| t.is_punct("!"))
                {
                    j += 1;
                }
                if let Some(Tree::Group(attr)) = trees.get(j) {
                    if attr.delim == Delim::Bracket {
                        if attr_is_cfg_test(attr) {
                            pending_test = true;
                        }
                        if let Some(p) = attr_path_override(attr) {
                            pending_path = Some(p);
                        }
                        i = j + 1;
                        continue;
                    }
                }
                i += 1;
            }
            "pub" => {
                pending_pub = true;
                pending_pub_restricted = false;
                if let Some(Tree::Group(g)) = trees.get(i + 1) {
                    if g.delim == Delim::Paren {
                        pending_pub_restricted = true;
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            "mod" => {
                let name = trees
                    .get(i + 1)
                    .and_then(Tree::tok)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                match trees.get(i + 2) {
                    Some(Tree::Group(g)) if g.delim == Delim::Brace => {
                        // Inline module: recurse with the path pushed.
                        let was_test = ctx.in_test;
                        ctx.in_test = ctx.in_test || pending_test;
                        ctx.module.push(name);
                        walk_items(&g.trees, ctx, out);
                        ctx.module.pop();
                        ctx.in_test = was_test;
                        i += 3;
                    }
                    _ => {
                        out.submods.push(SubMod {
                            name,
                            path_override: pending_path.take(),
                            in_test: ctx.in_test || pending_test,
                        });
                        i += 3; // mod name ;
                    }
                }
                pending_test = false;
                pending_pub = false;
                pending_path = None;
            }
            "impl" => {
                // Parse `impl<G> Type {` or `impl<G> Trait for Type {`.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut segs_a: Vec<String> = Vec::new(); // before `for`
                let mut segs_b: Vec<String> = Vec::new(); // after `for`
                let mut saw_for = false;
                let mut body: Option<&Group> = None;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group(g) if g.delim == Delim::Brace && angle == 0 => {
                            body = Some(g);
                            break;
                        }
                        Tree::Group(_) => {}
                        Tree::Tok(t) => match t.text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "<<" => angle += 2,
                            ">>" => angle -= 2,
                            "for" if angle == 0 => saw_for = true,
                            "where" if angle == 0 => {}
                            _ if t.kind == TokKind::Ident && angle == 0 && !is_keyword(&t.text) => {
                                if saw_for {
                                    segs_b.push(t.text.clone());
                                } else {
                                    segs_a.push(t.text.clone());
                                }
                            }
                            _ => {}
                        },
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    let (trait_name, type_name) = if saw_for {
                        (segs_a.last().cloned(), segs_b.first().cloned())
                    } else {
                        (None, segs_a.first().cloned())
                    };
                    let was_impl = ctx.impl_type.take();
                    let was_trait = ctx.trait_name.take();
                    let was_test = ctx.in_test;
                    ctx.impl_type = type_name;
                    ctx.trait_name = trait_name;
                    ctx.in_test = ctx.in_test || pending_test;
                    walk_items(&body.trees, ctx, out);
                    ctx.impl_type = was_impl;
                    ctx.trait_name = was_trait;
                    ctx.in_test = was_test;
                }
                pending_test = false;
                pending_pub = false;
                i = j + 1;
            }
            "trait" => {
                let name = trees
                    .get(i + 1)
                    .and_then(Tree::tok)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                // Find the brace body (skipping supertrait bounds).
                let mut j = i + 2;
                let mut body: Option<&Group> = None;
                while j < trees.len() {
                    if let Tree::Group(g) = &trees[j] {
                        if g.delim == Delim::Brace {
                            body = Some(g);
                            break;
                        }
                    }
                    if trees[j].tok().is_some_and(|t| t.is_punct(";")) {
                        break;
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    let was_impl = ctx.impl_type.take();
                    let was_trait = ctx.trait_name.take();
                    let was_test = ctx.in_test;
                    ctx.impl_type = Some(name.clone());
                    ctx.trait_name = Some(name);
                    ctx.in_test = ctx.in_test || pending_test;
                    walk_items(&body.trees, ctx, out);
                    ctx.impl_type = was_impl;
                    ctx.trait_name = was_trait;
                    ctx.in_test = was_test;
                }
                pending_test = false;
                pending_pub = false;
                i = j + 1;
            }
            "struct" => {
                let name = trees
                    .get(i + 1)
                    .and_then(Tree::tok)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                // Named-field structs: the first brace group before `;`.
                let mut j = i + 2;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group(g) if g.delim == Delim::Brace => {
                            extract_fields(&name, &g.trees, out);
                            break;
                        }
                        Tree::Tok(t) if t.is_punct(";") => break,
                        _ => j += 1,
                    }
                }
                pending_test = false;
                pending_pub = false;
                i = j + 1;
            }
            "fn" => {
                let name = trees
                    .get(i + 1)
                    .and_then(Tree::tok)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                // Params: first paren group (after any generics), then
                // body: first brace group before `;` at this level.
                let mut j = i + 2;
                let mut params: Option<&Group> = None;
                let mut body: Option<&Group> = None;
                while j < trees.len() {
                    match &trees[j] {
                        Tree::Group(g) if g.delim == Delim::Paren && params.is_none() => {
                            params = Some(g);
                            j += 1;
                        }
                        Tree::Group(g) if g.delim == Delim::Brace => {
                            body = Some(g);
                            break;
                        }
                        Tree::Tok(t) if t.is_punct(";") => break,
                        _ => j += 1,
                    }
                }
                let mut qual = ctx.module.clone();
                if let Some(t) = &ctx.impl_type {
                    qual.push(t.clone());
                }
                qual.push(name.clone());
                out.fns.push(FnItem {
                    name,
                    qual: qual.join("::"),
                    file: ctx.rel.to_string(),
                    line: tok.line,
                    end_line: body.map_or(tok.line, |b| b.close_line),
                    is_pub: pending_pub && !pending_pub_restricted,
                    in_test: ctx.in_test || pending_test,
                    impl_type: ctx.impl_type.clone(),
                    trait_name: ctx.trait_name.clone(),
                    params: params.map(|p| p.trees.clone()).unwrap_or_default(),
                    body: body.map(|b| b.trees.clone()).unwrap_or_default(),
                });
                pending_test = false;
                pending_pub = false;
                i = j + 1;
            }
            _ => {
                // `use`, `const`, `static`, `type`, `extern`, expression
                // statements, … — no item state to track.
                if !matches!(tok.text.as_str(), "unsafe" | "async" | "const" | "extern") {
                    pending_pub = false;
                    pending_test = pending_test
                        && matches!(tok.text.as_str(), "unsafe" | "async" | "const" | "extern");
                }
                i += 1;
            }
        }
    }
}

/// Extract named fields from a struct body: `vis name : Type ,`.
fn extract_fields(strukt: &str, trees: &[Tree], out: &mut FileAst) {
    // Split on top-level commas; each chunk is `attrs vis name : type`.
    let mut chunk: Vec<&Tree> = Vec::new();
    let mut chunks: Vec<Vec<&Tree>> = Vec::new();
    for tree in trees {
        if tree.tok().is_some_and(|t| t.is_punct(",")) {
            chunks.push(std::mem::take(&mut chunk));
        } else {
            chunk.push(tree);
        }
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    for chunk in chunks {
        // Find `name :` where name is the last ident before the first
        // top-level colon.
        let colon = chunk
            .iter()
            .position(|t| t.tok().is_some_and(|t| t.is_punct(":")));
        let Some(colon) = colon else { continue };
        let name = chunk[..colon]
            .iter()
            .rev()
            .find_map(|t| t.tok())
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        let Some(name) = name else { continue };
        let ty: Vec<Tree> = chunk[colon + 1..].iter().map(|&t| t.clone()).collect();
        out.fields.push(FieldItem {
            strukt: strukt.to_string(),
            field: name,
            ty: flatten(&ty),
        });
    }
}

/// Parse one file into a [`FileAst`].
pub fn parse_file(rel: &str, src: &str) -> FileAst {
    let lexed = lex(src);
    let trees = to_trees(lexed.tokens);
    let mut out = FileAst {
        rel: rel.to_string(),
        comments: lexed.comments,
        ..FileAst::default()
    };
    extract_items(&trees, rel, &mut out);
    out
}

/// A parsed crate: every file reachable from its entry points through
/// the module tree.
#[derive(Debug, Default)]
pub struct CrateAst {
    /// Ratchet unit, `crates/<name>` or `src`.
    pub unit: String,
    /// Parsed files in walk order.
    pub files: Vec<FileAst>,
    /// Files under `src/` that no `mod` declaration reaches (orphans).
    pub orphans: Vec<String>,
}

/// Parse a crate rooted at `src_dir` (its `src/` directory), reachable
/// from every entry point (`lib.rs`, `main.rs`, `bin/*.rs`). `root` is
/// the workspace root used to make paths relative; `unit` names the
/// crate in diagnostics and the ratchet.
pub fn parse_crate(root: &Path, src_dir: &Path, unit: &str) -> Result<CrateAst, String> {
    let mut ast = CrateAst {
        unit: unit.to_string(),
        ..CrateAst::default()
    };
    let mut visited: Vec<PathBuf> = Vec::new();
    let mut entries: Vec<PathBuf> = Vec::new();
    for name in ["lib.rs", "main.rs"] {
        let p = src_dir.join(name);
        if p.is_file() {
            entries.push(p);
        }
    }
    let bin_dir = src_dir.join("bin");
    if bin_dir.is_dir() {
        let mut bins: Vec<PathBuf> = fs::read_dir(&bin_dir)
            .map_err(|e| format!("read {}: {e}", bin_dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        bins.sort();
        entries.extend(bins);
    }
    for entry in entries {
        walk_module_file(root, &entry, &mut visited, &mut ast)?;
    }
    // Orphans: .rs files under src/ the module tree never reached.
    let mut all: Vec<PathBuf> = Vec::new();
    collect_rs_files(src_dir, &mut all)?;
    for file in all {
        if !visited.contains(&file) {
            ast.orphans.push(rel_of(root, &file));
        }
    }
    ast.orphans.sort();
    Ok(ast)
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collect `.rs` files under `dir`, sorted.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parse `file` and recurse into its out-of-line modules.
fn walk_module_file(
    root: &Path,
    file: &Path,
    visited: &mut Vec<PathBuf>,
    ast: &mut CrateAst,
) -> Result<(), String> {
    if visited.contains(&file.to_path_buf()) {
        return Ok(());
    }
    visited.push(file.to_path_buf());
    let src = fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
    let rel = rel_of(root, file);
    let parsed = parse_file(&rel, &src);
    // Resolve out-of-line modules relative to this file's module dir:
    // `src/lib.rs` / `src/main.rs` / `src/foo/mod.rs` resolve in their own
    // directory; `src/foo.rs` resolves in `src/foo/`.
    let dir = file.parent().unwrap_or(Path::new("."));
    let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("");
    let mod_dir = if matches!(stem, "lib" | "main" | "mod") || dir.ends_with("bin") {
        dir.to_path_buf()
    } else {
        dir.join(stem)
    };
    let submods = parsed.submods.clone();
    ast.files.push(parsed);
    for sm in submods {
        if sm.in_test {
            continue;
        }
        let candidates = match &sm.path_override {
            Some(p) => vec![dir.join(p)],
            None => vec![
                mod_dir.join(format!("{}.rs", sm.name)),
                mod_dir.join(&sm.name).join("mod.rs"),
            ],
        };
        let Some(target) = candidates.into_iter().find(|p| p.is_file()) else {
            // Unresolvable module (cfg-gated platform file, generated
            // code): skip rather than hard-error; orphan detection will
            // surface anything truly unreached.
            continue;
        };
        walk_module_file(root, &target, visited, ast)?;
    }
    Ok(())
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokKind::Ident => "ident",
            TokKind::Lifetime => "lifetime",
            TokKind::Int => "int",
            TokKind::Float => "float",
            TokKind::Str => "str",
            TokKind::Char => "char",
            TokKind::Punct => "punct",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_literals_and_operators() {
        let l = lex(r#"let x = 1.5e-3; let s = "a.unwrap()"; let r = 0..n; m /= 2;"#);
        let kinds: Vec<(TokKind, &str)> =
            l.tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
        assert!(kinds.contains(&(TokKind::Float, "1.5e-3")));
        assert!(kinds.contains(&(TokKind::Str, "a.unwrap()")));
        assert!(kinds.contains(&(TokKind::Punct, "..")));
        assert!(kinds.contains(&(TokKind::Punct, "/=")));
        assert!(kinds.contains(&(TokKind::Int, "0")));
    }

    #[test]
    fn lexes_raw_strings_and_lifetimes() {
        let l = lex(r##"fn f<'a>(x: &'a str) -> &'a str { r#"panic!()"# }"##);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "panic!()"));
        // The panic! inside the raw string must NOT be an ident.
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn comments_are_side_channel() {
        let l = lex("// mtm-allow: wall-clock -- why\nfn f() {} /* block */");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("mtm-allow: wall-clock"));
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn trees_nest_and_record_lines() {
        let l = lex("fn f() {\n  g(x[0]);\n}");
        let trees = to_trees(l.tokens);
        // fn f () { ... }
        let body = trees
            .iter()
            .filter_map(Tree::group)
            .find(|g| g.delim == Delim::Brace)
            .expect("body group");
        assert_eq!(body.line, 1);
        assert_eq!(body.close_line, 3);
    }

    #[test]
    fn int_method_call_is_not_float() {
        let l = lex("let x = 3.max(y); let f = 3.0.max(y);");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Int && t.text == "3"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Float && t.text == "3.0"));
    }

    #[test]
    fn extracts_fns_with_impl_and_mod_context() {
        let src = r#"
mod inner {
    pub struct S { pub map: HashMap<u64, f64> }
    impl S {
        pub fn get(&self) -> u64 { 1 }
    }
    impl Measure for S {
        fn measure(&mut self) -> f64 { 0.0 }
    }
}
pub fn free() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
"#;
        let ast = parse_file("x.rs", src);
        let names: Vec<&str> = ast.fns.iter().map(|f| f.qual.as_str()).collect();
        assert!(names.contains(&"inner::S::get"));
        assert!(names.contains(&"inner::S::measure"));
        assert!(names.contains(&"free"));
        let measure = ast.fns.iter().find(|f| f.name == "measure").unwrap();
        assert_eq!(measure.trait_name.as_deref(), Some("Measure"));
        let helper = ast.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test);
        let field = ast.fields.iter().find(|f| f.field == "map").unwrap();
        assert!(field.ty.contains("HashMap"));
        assert_eq!(field.strukt, "S");
    }

    #[test]
    fn cfg_test_fn_attribute_is_detected() {
        let src = "#[cfg(test)]\nfn only_in_tests() { x.unwrap(); }\nfn real() {}";
        let ast = parse_file("x.rs", src);
        assert!(
            ast.fns
                .iter()
                .find(|f| f.name == "only_in_tests")
                .unwrap()
                .in_test
        );
        assert!(!ast.fns.iter().find(|f| f.name == "real").unwrap().in_test);
    }

    #[test]
    fn submods_and_path_overrides() {
        let src = "mod plain;\n#[path = \"other/file.rs\"]\nmod renamed;\n#[cfg(test)]\nmod t;";
        let ast = parse_file("x.rs", src);
        assert_eq!(ast.submods.len(), 3);
        assert_eq!(ast.submods[0].name, "plain");
        assert_eq!(
            ast.submods[1].path_override.as_deref(),
            Some("other/file.rs")
        );
        assert!(ast.submods[2].in_test);
    }
}
