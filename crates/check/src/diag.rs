//! Diagnostics shared by the analysis passes.
//!
//! Every finding is a [`Diag`]: a stable machine-readable code, a
//! `file:line` anchor, and a one-line human message. Reports render
//! deterministically (sorted by file, line, code) so snapshot tests can
//! assert exact output.

use std::fmt;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Stable code, e.g. `taint/wall-clock` or `annotation/stale`.
    pub code: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl Diag {
    /// Build a diagnostic.
    pub fn new(code: &str, file: &str, line: usize, message: impl Into<String>) -> Diag {
        Diag {
            code: code.to_string(),
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.code, self.message
        )
    }
}

/// A set of findings with deterministic rendering.
#[derive(Debug, Default)]
pub struct Report {
    /// The findings, in insertion order until [`Report::sorted`].
    pub diags: Vec<Diag>,
}

impl Report {
    /// Add a finding.
    pub fn push(&mut self, diag: Diag) {
        self.diags.push(diag);
    }

    /// Absorb another report.
    pub fn extend(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Findings sorted by (file, line, code, message) — the render and
    /// snapshot order.
    pub fn sorted(&self) -> Vec<&Diag> {
        let mut v: Vec<&Diag> = self.diags.iter().collect();
        v.sort_by(|a, b| {
            (&a.file, a.line, &a.code, &a.message).cmp(&(&b.file, b.line, &b.code, &b.message))
        });
        v
    }

    /// True when no findings were recorded.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Render every finding, one per line, sorted.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in self.sorted() {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_and_stable() {
        let mut r = Report::default();
        r.push(Diag::new("b/code", "z.rs", 9, "later file"));
        r.push(Diag::new("b/code", "a.rs", 9, "same line, later code"));
        r.push(Diag::new("a/code", "a.rs", 9, "same line, earlier code"));
        r.push(Diag::new("a/code", "a.rs", 3, "earlier line"));
        let rendered = r.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[0], "a.rs:3: [a/code] earlier line");
        assert_eq!(lines[1], "a.rs:9: [a/code] same line, earlier code");
        assert_eq!(lines[2], "a.rs:9: [b/code] same line, later code");
        assert_eq!(lines[3], "z.rs:9: [b/code] later file");
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
    }
}
