//! Function-level call graph over the parsed workspace.
//!
//! Resolution is name-based and deliberately conservative: a call edge is
//! drawn to *every* workspace function the callee name could refer to.
//! Method calls (`recv.name(...)`) resolve by bare name across all impl
//! blocks; path calls (`Type::name(...)`) try the qualified key first and
//! fall back to the bare name. Over-approximating edges is the right
//! failure mode for a taint pass — a spurious edge can only create a
//! finding that an `mtm-allow` review then adjudicates, never hide one.
//!
//! Functions under `#[cfg(test)]` are excluded from the graph entirely:
//! test code is allowed to be nondeterministic and panicky.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{CrateAst, FnItem, Tree};

/// Index of one function in [`CallGraph::fns`].
pub type FnId = usize;

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, in crate/file/order of appearance.
    pub fns: Vec<FnItem>,
    /// Ratchet unit owning each function (parallel to `fns`).
    pub units: Vec<String>,
    /// `callers[f]` = functions with a call edge into `f`.
    pub callers: Vec<Vec<FnId>>,
    /// `callees[f]` = functions `f` has a call edge to.
    pub callees: Vec<Vec<FnId>>,
    /// bare name → candidate fn ids.
    by_name: BTreeMap<String, Vec<FnId>>,
    /// `Type::name` → candidate fn ids.
    by_qual: BTreeMap<String, Vec<FnId>>,
}

impl CallGraph {
    /// Build the graph from parsed crates.
    pub fn build(crates: &[CrateAst]) -> CallGraph {
        let mut g = CallGraph::default();
        for krate in crates {
            for file in &krate.files {
                for f in &file.fns {
                    if f.in_test {
                        continue;
                    }
                    let id = g.fns.len();
                    g.by_name.entry(f.name.clone()).or_default().push(id);
                    if let Some(ty) = &f.impl_type {
                        g.by_qual
                            .entry(format!("{ty}::{}", f.name))
                            .or_default()
                            .push(id);
                    }
                    g.fns.push(f.clone());
                    g.units.push(krate.unit.clone());
                }
            }
        }
        g.callers = vec![Vec::new(); g.fns.len()];
        g.callees = vec![Vec::new(); g.fns.len()];
        for caller in 0..g.fns.len() {
            let mut targets: BTreeSet<FnId> = BTreeSet::new();
            collect_calls(&g.fns[caller].body.clone(), &g, &mut targets);
            for callee in targets {
                if callee != caller {
                    g.callees[caller].push(callee);
                    g.callers[callee].push(caller);
                }
            }
        }
        g
    }

    /// Candidate functions for a bare callee name.
    pub fn resolve_name(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Candidate functions for a `Type::name` path.
    pub fn resolve_qual(&self, qual: &str) -> &[FnId] {
        self.by_qual.get(qual).map_or(&[], |v| v.as_slice())
    }

    /// Every function reachable *from* any of `seeds` by following callee
    /// edges (i.e. the call-closure of the seeds), including the seeds.
    pub fn reachable_from(&self, seeds: &[FnId]) -> BTreeSet<FnId> {
        self.closure(seeds, &self.callees)
    }

    /// Every function that can *reach* any of `seeds` by following caller
    /// edges (i.e. transitive callers), including the seeds.
    pub fn reaching(&self, seeds: &[FnId]) -> BTreeSet<FnId> {
        self.closure(seeds, &self.callers)
    }

    fn closure(&self, seeds: &[FnId], edges: &[Vec<FnId>]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = seeds.iter().copied().collect();
        let mut queue: Vec<FnId> = seeds.to_vec();
        while let Some(f) = queue.pop() {
            for &next in &edges[f] {
                if seen.insert(next) {
                    queue.push(next);
                }
            }
        }
        seen
    }
}

/// Scan a token-tree body for call sites and record resolved targets.
///
/// Patterns:
/// - `. name (` — method call: resolve by bare name.
/// - `Type :: name (` — path call: try `Type::name`, else bare name.
/// - `name (` (no `.`/`::` before) — free call: resolve by bare name.
fn collect_calls(trees: &[Tree], g: &CallGraph, out: &mut BTreeSet<FnId>) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group(grp) => collect_calls(&grp.trees, g, out),
            Tree::Tok(tok) => {
                let is_call = tok.kind == crate::ast::TokKind::Ident
                    && matches!(trees.get(i + 1), Some(Tree::Group(p)) if p.delim == crate::ast::Delim::Paren);
                if is_call {
                    let prev = i.checked_sub(1).and_then(|j| trees[j].tok());
                    let name = tok.text.as_str();
                    if prev.is_some_and(|p| p.is_punct("::")) {
                        // Qualified: look two back for the type segment.
                        let ty = i
                            .checked_sub(2)
                            .and_then(|j| trees[j].tok())
                            .filter(|t| t.kind == crate::ast::TokKind::Ident)
                            .map(|t| t.text.clone());
                        let qual_hits: &[FnId] = match &ty {
                            Some(ty) => g.resolve_qual(&format!("{ty}::{name}")),
                            None => &[],
                        };
                        if qual_hits.is_empty() {
                            out.extend(g.resolve_name(name).iter().copied());
                        } else {
                            out.extend(qual_hits.iter().copied());
                        }
                    } else {
                        // Method or free call: bare-name resolution.
                        out.extend(g.resolve_name(name).iter().copied());
                    }
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{parse_file, CrateAst};

    fn graph_of(src: &str) -> CallGraph {
        let file = parse_file("x.rs", src);
        let krate = CrateAst {
            unit: "crates/x".into(),
            files: vec![file],
            orphans: vec![],
        };
        CallGraph::build(&[krate])
    }

    #[test]
    fn free_and_method_calls_make_edges() {
        let g = graph_of(
            r#"
fn leaf() {}
fn caller() { leaf(); }
struct S;
impl S {
    fn method(&self) { helper(); }
}
fn helper() {}
fn uses_method(s: &S) { s.method(); }
"#,
        );
        let leaf = g.fns.iter().position(|f| f.name == "leaf").unwrap();
        let caller = g.fns.iter().position(|f| f.name == "caller").unwrap();
        let method = g.fns.iter().position(|f| f.name == "method").unwrap();
        let uses = g.fns.iter().position(|f| f.name == "uses_method").unwrap();
        assert!(g.callees[caller].contains(&leaf));
        assert!(g.callers[leaf].contains(&caller));
        assert!(g.callees[uses].contains(&method));
    }

    #[test]
    fn qualified_calls_prefer_the_typed_impl() {
        let g = graph_of(
            r#"
struct A;
struct B;
impl A { fn make() -> A { A } }
impl B { fn make() -> B { B } }
fn build() { let _ = A::make(); }
"#,
        );
        let a_make = g
            .fns
            .iter()
            .position(|f| f.name == "make" && f.impl_type.as_deref() == Some("A"))
            .unwrap();
        let b_make = g
            .fns
            .iter()
            .position(|f| f.name == "make" && f.impl_type.as_deref() == Some("B"))
            .unwrap();
        let build = g.fns.iter().position(|f| f.name == "build").unwrap();
        assert!(g.callees[build].contains(&a_make));
        assert!(!g.callees[build].contains(&b_make));
    }

    #[test]
    fn test_functions_are_excluded() {
        let g = graph_of("#[cfg(test)]\nmod tests { fn t() {} }\nfn real() {}");
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
    }

    #[test]
    fn reaching_closure_walks_callers_transitively() {
        let g = graph_of(
            r#"
fn sink() {}
fn mid() { sink(); }
fn top() { mid(); }
fn unrelated() {}
"#,
        );
        let sink = g.fns.iter().position(|f| f.name == "sink").unwrap();
        let reach = g.reaching(&[sink]);
        let names: Vec<&str> = reach.iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert!(names.contains(&"sink"));
        assert!(names.contains(&"mid"));
        assert!(names.contains(&"top"));
        assert!(!names.contains(&"unrelated"));
    }
}
