//! Function-level call graph over the parsed workspace.
//!
//! Resolution is name-based and deliberately conservative: a call edge is
//! drawn to *every* workspace function the callee name could refer to.
//! Method calls (`recv.name(...)`) resolve by bare name across all impl
//! blocks; path calls (`Type::name(...)`) try the qualified key first and
//! fall back to the bare name. Over-approximating edges is the right
//! failure mode for a taint pass — a spurious edge can only create a
//! finding that an `mtm-allow` review then adjudicates, never hide one.
//!
//! Functions under `#[cfg(test)]` are excluded from the graph entirely:
//! test code is allowed to be nondeterministic and panicky.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{CrateAst, Delim, FnItem, Tok, TokKind, Tree};

/// Index of one function in [`CallGraph::fns`].
pub type FnId = usize;

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, in crate/file/order of appearance.
    pub fns: Vec<FnItem>,
    /// Ratchet unit owning each function (parallel to `fns`).
    pub units: Vec<String>,
    /// `callers[f]` = functions with a call edge into `f`.
    pub callers: Vec<Vec<FnId>>,
    /// `callees[f]` = functions `f` has a call edge to.
    pub callees: Vec<Vec<FnId>>,
    /// bare name → candidate fn ids.
    by_name: BTreeMap<String, Vec<FnId>>,
    /// `Type::name` → candidate fn ids.
    by_qual: BTreeMap<String, Vec<FnId>>,
    /// Every `impl`/`trait` type name seen in the workspace.
    impl_types: BTreeSet<String>,
}

impl CallGraph {
    /// Build the graph from parsed crates.
    pub fn build(crates: &[CrateAst]) -> CallGraph {
        let mut g = CallGraph::default();
        for krate in crates {
            for file in &krate.files {
                for f in &file.fns {
                    if f.in_test {
                        continue;
                    }
                    let id = g.fns.len();
                    g.by_name.entry(f.name.clone()).or_default().push(id);
                    if let Some(ty) = &f.impl_type {
                        g.by_qual
                            .entry(format!("{ty}::{}", f.name))
                            .or_default()
                            .push(id);
                        g.impl_types.insert(ty.clone());
                    }
                    g.fns.push(f.clone());
                    g.units.push(krate.unit.clone());
                }
            }
        }
        g.callers = vec![Vec::new(); g.fns.len()];
        g.callees = vec![Vec::new(); g.fns.len()];
        for caller in 0..g.fns.len() {
            let mut targets: BTreeSet<FnId> = BTreeSet::new();
            collect_calls(&g.fns[caller].body.clone(), &g, &mut targets);
            for callee in targets {
                if callee != caller {
                    g.callees[caller].push(callee);
                    g.callers[callee].push(caller);
                }
            }
        }
        g
    }

    /// Candidate functions for a bare callee name.
    pub fn resolve_name(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Candidate functions for a `Type::name` path.
    pub fn resolve_qual(&self, qual: &str) -> &[FnId] {
        self.by_qual.get(qual).map_or(&[], |v| v.as_slice())
    }

    /// Every function reachable *from* any of `seeds` by following callee
    /// edges (i.e. the call-closure of the seeds), including the seeds.
    pub fn reachable_from(&self, seeds: &[FnId]) -> BTreeSet<FnId> {
        self.closure(seeds, &self.callees)
    }

    /// Every function that can *reach* any of `seeds` by following caller
    /// edges (i.e. transitive callers), including the seeds.
    pub fn reaching(&self, seeds: &[FnId]) -> BTreeSet<FnId> {
        self.closure(seeds, &self.callers)
    }

    fn closure(&self, seeds: &[FnId], edges: &[Vec<FnId>]) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = seeds.iter().copied().collect();
        let mut queue: Vec<FnId> = seeds.to_vec();
        while let Some(f) = queue.pop() {
            for &next in &edges[f] {
                if seen.insert(next) {
                    queue.push(next);
                }
            }
        }
        seen
    }

    /// Every closure literal passed as a call argument, with the call's
    /// candidate callees. Closure bodies live in their *defining*
    /// function's token trees, so a body-level walk attributes their
    /// contents to the definer — but the code actually *runs* wherever
    /// the callee invokes it. Seams let the hot-path pass follow that
    /// indirection: when a callee is hot but the definer is not, the
    /// closure body still gets scanned (see [`crate::hotpath`]).
    pub fn closure_seams(&self) -> Vec<ClosureSeam> {
        let mut out = Vec::new();
        for (owner, f) in self.fns.iter().enumerate() {
            collect_seams(&f.body, self, owner, &mut out);
        }
        out
    }

    /// Resolve every call in arbitrary token trees (a closure body) to
    /// candidate fn ids, with the same rules as graph construction.
    pub fn calls_in(&self, trees: &[Tree]) -> BTreeSet<FnId> {
        let mut out = BTreeSet::new();
        collect_calls(trees, self, &mut out);
        out
    }
}

/// A closure literal passed as a call argument (see
/// [`CallGraph::closure_seams`]).
#[derive(Debug)]
pub struct ClosureSeam {
    /// Function whose body textually contains the closure.
    pub owner: FnId,
    /// Candidate callees the closure is handed to (never the owner).
    pub callees: Vec<FnId>,
    /// Token trees of the closure argument: params and body.
    pub body: Vec<Tree>,
}

/// Scan a token-tree body for call sites and record resolved targets.
///
/// Patterns:
/// - `. name (` — method call: resolve by bare name.
/// - `Type :: name (` — path call: try `Type::name`, else bare name.
/// - `name (` (no `.`/`::` before) — free call: resolve by bare name.
fn collect_calls(trees: &[Tree], g: &CallGraph, out: &mut BTreeSet<FnId>) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group(grp) => collect_calls(&grp.trees, g, out),
            Tree::Tok(tok) => {
                let is_call = tok.kind == TokKind::Ident
                    && matches!(trees.get(i + 1), Some(Tree::Group(p)) if p.delim == Delim::Paren);
                if is_call {
                    resolve_call(trees, i, tok, g, out);
                }
            }
        }
        i += 1;
    }
}

/// Resolve the single call site at index `i` (ident `tok` followed by a
/// paren group) into candidate targets.
fn resolve_call(trees: &[Tree], i: usize, tok: &Tok, g: &CallGraph, out: &mut BTreeSet<FnId>) {
    let prev = i.checked_sub(1).and_then(|j| trees[j].tok());
    let name = tok.text.as_str();
    if prev.is_some_and(|p| p.is_punct("::")) {
        // Qualified: look two back for the type segment.
        let ty = i
            .checked_sub(2)
            .and_then(|j| trees[j].tok())
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        let qual_hits: &[FnId] = match &ty {
            Some(ty) => g.resolve_qual(&format!("{ty}::{name}")),
            None => &[],
        };
        if !qual_hits.is_empty() {
            out.extend(qual_hits.iter().copied());
        } else {
            // A capitalized segment the workspace has no impl for is an
            // external type (`Vec::new`, `Instant::now`): its methods
            // can never land in workspace code, so the bare-name
            // fallback would only fabricate edges to every same-named
            // constructor. Module paths (lowercase) and `Self`/generic
            // receivers keep the conservative fallback.
            let external_type = ty.as_deref().is_some_and(|t| {
                t != "Self"
                    && t.chars().next().is_some_and(char::is_uppercase)
                    && t.len() > 2
                    && !g.impl_types.contains(t)
            });
            if !external_type {
                out.extend(g.resolve_name(name).iter().copied());
            }
        }
    } else {
        // Method or free call: bare-name resolution.
        out.extend(g.resolve_name(name).iter().copied());
    }
}

/// Std iterator/`Option`/`Result` adaptors: method calls with these
/// names overwhelmingly dispatch to the standard library, not to a
/// same-named workspace method, so closures handed to them stay
/// attributed to their textual owner instead of fanning out through
/// bare-name collisions (e.g. every `.map(…)` edging into `Mat::map`).
const STD_ADAPTORS: &[&str] = &[
    "map",
    "map_or",
    "map_or_else",
    "map_err",
    "map_while",
    "filter",
    "filter_map",
    "flat_map",
    "for_each",
    "fold",
    "try_fold",
    "scan",
    "inspect",
    "and_then",
    "or_else",
    "unwrap_or_else",
    "ok_or_else",
    "take_while",
    "skip_while",
    "position",
    "rposition",
    "find",
    "find_map",
    "any",
    "all",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search_by",
    "binary_search_by_key",
    "dedup_by",
    "dedup_by_key",
    "retain",
    "partition",
    "then",
    "is_some_and",
    "is_none_or",
    "get_or_insert_with",
    "resize_with",
];

/// Scan a body for call sites that pass closure literals and record one
/// seam per closure argument.
fn collect_seams(trees: &[Tree], g: &CallGraph, owner: FnId, out: &mut Vec<ClosureSeam>) {
    let mut i = 0usize;
    while i < trees.len() {
        match &trees[i] {
            Tree::Group(grp) => collect_seams(&grp.trees, g, owner, out),
            Tree::Tok(tok) => {
                let args = match trees.get(i + 1) {
                    Some(Tree::Group(p)) if p.delim == Delim::Paren => Some(p),
                    _ => None,
                };
                let std_adaptor = i
                    .checked_sub(1)
                    .and_then(|j| trees[j].tok())
                    .is_some_and(|p| p.is_punct("."))
                    && STD_ADAPTORS.contains(&tok.text.as_str());
                if std_adaptor {
                    i += 1;
                    continue;
                }
                if let (true, Some(args)) = (tok.kind == TokKind::Ident, args) {
                    let spans = closure_spans(&args.trees);
                    if !spans.is_empty() {
                        let mut callees = BTreeSet::new();
                        resolve_call(trees, i, tok, g, &mut callees);
                        callees.remove(&owner);
                        if !callees.is_empty() {
                            let callees: Vec<FnId> = callees.into_iter().collect();
                            for body in spans {
                                out.push(ClosureSeam {
                                    owner,
                                    callees: callees.clone(),
                                    body,
                                });
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Top-level closure literals inside a call's argument trees: each span
/// runs from its opening `|`/`||` to the next top-level comma. Bitwise
/// `|` between arguments would over-match — the conservative direction
/// for this pass, and the workspace style keeps bit-ops parenthesised.
fn closure_spans(trees: &[Tree]) -> Vec<Vec<Tree>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < trees.len() {
        let (pipe, empty_params) = match &trees[i] {
            Tree::Tok(t) if t.kind == TokKind::Punct => (t.text == "|", t.text == "||"),
            _ => (false, false),
        };
        if !(pipe || empty_params) {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        if pipe {
            // Skip the parameter list: commas before the closing `|`
            // belong to it, not to the argument list.
            while j < trees.len() && !matches!(&trees[j], Tree::Tok(t) if t.is_punct("|")) {
                j += 1;
            }
            j += 1;
        }
        while j < trees.len() && !matches!(&trees[j], Tree::Tok(t) if t.is_punct(",")) {
            j += 1;
        }
        out.push(trees[start..j].to_vec());
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{parse_file, CrateAst};

    fn graph_of(src: &str) -> CallGraph {
        let file = parse_file("x.rs", src);
        let krate = CrateAst {
            unit: "crates/x".into(),
            files: vec![file],
            orphans: vec![],
        };
        CallGraph::build(&[krate])
    }

    #[test]
    fn free_and_method_calls_make_edges() {
        let g = graph_of(
            r#"
fn leaf() {}
fn caller() { leaf(); }
struct S;
impl S {
    fn method(&self) { helper(); }
}
fn helper() {}
fn uses_method(s: &S) { s.method(); }
"#,
        );
        let leaf = g.fns.iter().position(|f| f.name == "leaf").unwrap();
        let caller = g.fns.iter().position(|f| f.name == "caller").unwrap();
        let method = g.fns.iter().position(|f| f.name == "method").unwrap();
        let uses = g.fns.iter().position(|f| f.name == "uses_method").unwrap();
        assert!(g.callees[caller].contains(&leaf));
        assert!(g.callers[leaf].contains(&caller));
        assert!(g.callees[uses].contains(&method));
    }

    #[test]
    fn qualified_calls_prefer_the_typed_impl() {
        let g = graph_of(
            r#"
struct A;
struct B;
impl A { fn make() -> A { A } }
impl B { fn make() -> B { B } }
fn build() { let _ = A::make(); }
"#,
        );
        let a_make = g
            .fns
            .iter()
            .position(|f| f.name == "make" && f.impl_type.as_deref() == Some("A"))
            .unwrap();
        let b_make = g
            .fns
            .iter()
            .position(|f| f.name == "make" && f.impl_type.as_deref() == Some("B"))
            .unwrap();
        let build = g.fns.iter().position(|f| f.name == "build").unwrap();
        assert!(g.callees[build].contains(&a_make));
        assert!(!g.callees[build].contains(&b_make));
    }

    #[test]
    fn test_functions_are_excluded() {
        let g = graph_of("#[cfg(test)]\nmod tests { fn t() {} }\nfn real() {}");
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "real");
    }

    #[test]
    fn external_type_constructors_do_not_fan_out() {
        let g = graph_of(
            r#"
struct Sim;
impl Sim { fn new() -> Sim { Sim } }
fn hot() { let _v: Vec<u32> = Vec::new(); }
fn generic<T: Default>() { let _ = T::default(); }
fn default() {}
"#,
        );
        let hot = g.fns.iter().position(|f| f.name == "hot").unwrap();
        let sim_new = g
            .fns
            .iter()
            .position(|f| f.name == "new" && f.impl_type.as_deref() == Some("Sim"))
            .unwrap();
        // `Vec::new` is an external constructor: no edge to `Sim::new`.
        assert!(!g.callees[hot].contains(&sim_new));
        // Short generic receivers keep the conservative bare fallback.
        let generic = g.fns.iter().position(|f| f.name == "generic").unwrap();
        let default = g.fns.iter().position(|f| f.name == "default").unwrap();
        assert!(g.callees[generic].contains(&default));
    }

    #[test]
    fn closure_seams_link_definer_to_callee() {
        let g = graph_of(
            r#"
fn apply(f: impl Fn()) { f(); }
fn definer() { apply(|| helper()); }
fn helper() {}
"#,
        );
        let apply = g.fns.iter().position(|f| f.name == "apply").unwrap();
        let definer = g.fns.iter().position(|f| f.name == "definer").unwrap();
        let helper = g.fns.iter().position(|f| f.name == "helper").unwrap();
        let seams = g.closure_seams();
        let seam = seams
            .iter()
            .find(|s| s.owner == definer)
            .expect("seam recorded");
        assert_eq!(seam.callees, vec![apply]);
        assert!(g.calls_in(&seam.body).contains(&helper));
    }

    #[test]
    fn closure_spans_handle_params_and_multiple_args() {
        let g = graph_of(
            r#"
fn zip_with(f: impl Fn(u32, u32)) { f(1, 2); }
fn caller() { zip_with(|a, b| { combine(a, b); }); }
fn combine(_a: u32, _b: u32) {}
fn plain() { zip_with(noop_named); }
fn noop_named(_a: u32, _b: u32) {}
"#,
        );
        let caller = g.fns.iter().position(|f| f.name == "caller").unwrap();
        let plain = g.fns.iter().position(|f| f.name == "plain").unwrap();
        let combine = g.fns.iter().position(|f| f.name == "combine").unwrap();
        let seams = g.closure_seams();
        let seam = seams.iter().find(|s| s.owner == caller).expect("seam");
        assert!(g.calls_in(&seam.body).contains(&combine));
        // A named-function argument is not a closure literal.
        assert!(!seams.iter().any(|s| s.owner == plain));
    }

    #[test]
    fn reaching_closure_walks_callers_transitively() {
        let g = graph_of(
            r#"
fn sink() {}
fn mid() { sink(); }
fn top() { mid(); }
fn unrelated() {}
"#,
        );
        let sink = g.fns.iter().position(|f| f.name == "sink").unwrap();
        let reach = g.reaching(&[sink]);
        let names: Vec<&str> = reach.iter().map(|&i| g.fns[i].name.as_str()).collect();
        assert!(names.contains(&"sink"));
        assert!(names.contains(&"mid"));
        assert!(names.contains(&"top"));
        assert!(!names.contains(&"unrelated"));
    }
}
