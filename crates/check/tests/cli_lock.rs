//! End-to-end tests of the lock-region pass through the `mtm-check`
//! binary, over planted fixture workspaces: a lock-order cycle, blocking
//! IO under a held guard, a guard held across a foreign `Condvar::wait`,
//! the must-NOT-flag clean idioms, and stale lock annotations. Each
//! asserts the exact `file:line` diagnostics and the CLI exit code.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_ws(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_in(ws: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtm-check"))
        .args(args)
        .current_dir(fixture_ws(ws))
        .output()
        .expect("run mtm-check")
}

#[test]
fn lock_order_cycle_fails_with_both_edges() {
    let out = run_in("lock_cycle_ws", &["analyze", "--locks"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    for needle in [
        "order edge [crates/demo] `A` -> `B` at crates/demo/src/lib.rs:14",
        "order edge [crates/demo] `B` -> `A` at crates/demo/src/lib.rs:21",
        "lock-order cycle [A, B]: `A` -> `B` at crates/demo/src/lib.rs:14; \
         `B` -> `A` at crates/demo/src/lib.rs:21",
        "ratchet: [lock_order] crates/demo: 2 sites, not present in check/ratchet.toml",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}

#[test]
fn blocking_io_under_lock_fails_with_exact_sites() {
    let out = run_in("lock_blocking_ws", &["analyze", "--locks"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    for needle in [
        "lock site [crates/demo] crates/demo/src/lib.rs:17: \
         `.write_all(…)` does blocking IO while `LOG` is held in `checkpoint`",
        "lock site [crates/demo] crates/demo/src/lib.rs:17: \
         `.sync_all(…)` does blocking IO while `LOG` is held in `checkpoint`",
        "ratchet: [blocking_under_lock] crates/demo: 2 sites, not present in check/ratchet.toml",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
    // The File::create *before* the acquisition is outside the region.
    assert!(!stdout.contains("File::create"), "{stdout}");
}

#[test]
fn guard_across_foreign_wait_is_a_hard_diagnostic() {
    let out = run_in("lock_wait_ws", &["analyze"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains(
            "crates/demo/src/lib.rs:16: [lock/guard-across-wait] guard of `STATE` is \
             held across `Condvar::wait` at line 19 — a wait releases only its own \
             mutex; drop the guard first"
        ),
        "{stdout}"
    );
    assert!(stdout.contains("1 finding(s)"), "{stdout}");
}

#[test]
fn dropped_guard_and_own_guard_wait_are_clean() {
    let out = run_in("lock_clean_ws", &["analyze", "--locks"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Both locks are recognized, neither region is charged: the write
    // after `drop(g)` is outside the region, and the condvar loop holds
    // only its own guard.
    assert!(stdout.contains("2 named lock(s)"), "{stdout}");
    assert!(
        stdout.contains("0 blocking-under-lock, 0 lock-order sites"),
        "{stdout}"
    );
    assert!(!stdout.contains("lock site"), "{stdout}");
    assert!(!stdout.contains("guard-across-wait"), "{stdout}");
}

#[test]
fn stale_lock_annotations_are_hard_errors() {
    let out = run_in("lock_stale_ws", &["analyze"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    for needle in [
        "crates/demo/src/lib.rs:11: [lockregion/stale] mtm-lock annotation (`core`) \
         matches no lock acquisition below it and no function signature — reattach \
         or remove it",
        "crates/demo/src/lib.rs:19: [annotation/stale] mtm-allow annotation (lock) \
         no longer suppresses any finding",
        "2 finding(s)",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}

#[test]
fn explain_lock_prints_the_model_and_rejects_unknown_topics() {
    let out = run_in("lock_clean_ws", &["analyze", "--explain", "lock"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout:\n{stdout}");
    for needle in [
        "mtm-lock:",
        "mtm-allow: lock",
        "blocking-under-lock",
        "lock-order",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
    let bad = run_in("lock_clean_ws", &["analyze", "--explain", "nonsense"]);
    assert_eq!(bad.status.code(), Some(2), "{:?}", bad);
}
