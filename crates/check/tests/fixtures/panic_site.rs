//! Planted violation: panic sites in library code outside `#[cfg(test)]`.

pub fn takes_the_shortcut(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn blames_the_caller(x: Result<u32, String>) -> u32 {
    x.expect("caller promised this was Ok")
}

pub fn gives_up(x: u32) -> u32 {
    if x > 100 {
        panic!("x too big: {x}");
    }
    x
}

#[cfg(test)]
mod tests {
    // Inside tests, unwrap is fine and must NOT be counted.
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
