//! Planted violation: float `==` / `!=` comparisons in kernel code.

pub fn converged(residual: f64) -> bool {
    residual == 0.0
}

pub fn still_moving(step: f64) -> bool {
    step != 1.0e-9
}

pub fn annotated_sentinel(x: f64) -> bool {
    x == 0.0 // lint:allow(float_cmp) exact sparse-skip sentinel — not flagged
}

pub fn integer_compare_is_fine(n: usize) -> bool {
    n == 3
}
