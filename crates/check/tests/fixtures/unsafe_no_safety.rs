//! Planted violation: `unsafe` without a `// SAFETY:` comment.

pub fn reads_raw(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}

pub fn documented_read(ptr: *const u32) -> u32 {
    // SAFETY: caller guarantees `ptr` is valid and aligned — not flagged.
    unsafe { *ptr }
}
