//! A fixture with no violations: every rule must stay silent here.

/// Doubles the input.
pub fn double(x: f64) -> f64 {
    x * 2.0
}

/// Near-equality the right way: tolerance, not `==`.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

/// Error handling without panics.
pub fn checked_div(a: f64, b: f64) -> Option<f64> {
    if b.abs() < f64::MIN_POSITIVE {
        None
    } else {
        Some(a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_doubles() {
        // Tests may unwrap() and compare floats exactly.
        assert_eq!(Some(4.0).unwrap(), double(2.0));
    }
}
