//! Planted violation: a panicking `pub fn` without a `# Panics` section.

/// Returns the first element.
pub fn head(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "head of empty slice");
    xs[0]
}

/// Returns the first element.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn documented_head(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "head of empty slice");
    xs[0]
}

/// Total of the slice — cannot panic, needs no section.
pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
