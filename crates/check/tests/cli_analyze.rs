//! End-to-end test of the `mtm-check` binary over fixture workspaces
//! (`fixtures/clean_ws`, `fixtures/tainted_ws`): exit code 0 on the
//! clean one, 1 with exact `file:line` diagnostics on the planted one,
//! and 2 on bad usage or a missing workspace root.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture_ws(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_in(ws: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mtm-check"))
        .args(args)
        .current_dir(fixture_ws(ws))
        .output()
        .expect("run mtm-check")
}

#[test]
fn clean_workspace_exits_zero() {
    let out = run_in("clean_ws", &["analyze"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("OK (0 taint/float findings"), "{stdout}");
    // The hot root's allowed `push` must neither count nor go stale.
    assert!(stdout.contains("0 hot-alloc"), "{stdout}");
    assert!(
        stdout.contains("0 blocking-under-lock, 0 lock-order sites"),
        "{stdout}"
    );
}

#[test]
fn planted_workspace_exits_one_with_exact_diagnostics() {
    let out = run_in("tainted_ws", &["analyze"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    for needle in [
        "crates/demo/src/lib.rs:14: [taint/wall-clock]",
        "crates/demo/src/lib.rs:15: [taint/wall-clock]",
        "crates/demo/src/lib.rs:20: [float/eq]",
        "crates/demo/src/lib.rs:12: [annotation/stale]",
        "crates/demo/src/lib.rs:23: [annotation/missing-reason]",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
    // Exactly the five planted findings, no more.
    assert!(stdout.contains("5 finding(s)"), "{stdout}");
}

#[test]
fn hot_closure_chain_is_caught_and_ratcheted() {
    // `labels` never runs hot itself, but it hands a closure to the hot
    // `apply`; the seam must charge the closure's allocations to
    // `labels (closure)` and the un-budgeted count must fail the ratchet.
    let out = run_in("tainted_ws", &["analyze", "--hot"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(
        stdout.contains("hot root [inner-loop] hot_loop"),
        "{stdout}"
    );
    for needle in [
        "`.push(…)` may allocate in `labels (closure)`",
        "`format!` allocates in `labels (closure)`",
        "ratchet: [alloc_hot] crates/demo: 2 sites, not present",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
}

#[test]
fn bad_usage_exits_two() {
    let out = run_in("clean_ws", &["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_workspace_root_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_mtm-check"))
        .arg("analyze")
        .current_dir("/")
        .output()
        .expect("run mtm-check");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("workspace root"), "{stderr}");
}
