//! Pass self-tests over the planted fixture files: every planted
//! violation must be flagged at its exact line, and the clean fixture
//! must stay silent — for both the comment-driven lint rules and the
//! AST-backed analyze pass.

use mtm_check::analyze;
use mtm_check::lint::{scan_source, Rule, RuleScope};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rule_lines(src: &str, rule: Rule) -> Vec<usize> {
    scan_source("fixture.rs", src, &RuleScope::all())
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn panic_site_fixture_is_counted_by_ast_pass() {
    let a = analyze::analyze_source("crates/fixture/src/lib.rs", &fixture("panic_site.rs"));
    // unwrap, expect and panic! each counted once; the unwrap inside
    // #[cfg(test)] is not.
    assert_eq!(a.counts["crates/fixture"].panic_sites, 3, "{:?}", a.counts);
}

#[test]
fn float_eq_fixture_is_flagged_by_ast_pass() {
    let a = analyze::analyze_source("crates/fixture/src/lib.rs", &fixture("float_eq.rs"));
    let rendered = a.report.render();
    // `== 0.0` (line 4) and `!= 1.0e-9` (line 8) flagged; the
    // lint:allow-annotated sentinel and the integer compare are not.
    assert_eq!(rendered.matches("float/eq").count(), 2, "{rendered}");
    assert!(
        rendered.contains("crates/fixture/src/lib.rs:4:"),
        "{rendered}"
    );
    assert!(
        rendered.contains("crates/fixture/src/lib.rs:8:"),
        "{rendered}"
    );
}

#[test]
fn unsafe_fixture_is_flagged() {
    let src = fixture("unsafe_no_safety.rs");
    let lines = rule_lines(&src, Rule::UnsafeNoSafety);
    // The undocumented unsafe block is flagged; the SAFETY-commented one
    // is not.
    assert_eq!(lines.len(), 1, "flagged lines: {lines:?}");
}

#[test]
fn missing_panics_doc_fixture_is_flagged() {
    let src = fixture("missing_panics_doc.rs");
    let lines = rule_lines(&src, Rule::MissingPanicsDoc);
    // `head` lacks the section; `documented_head` has it; `total` cannot
    // panic.
    assert_eq!(lines.len(), 1, "flagged lines: {lines:?}");
}

#[test]
fn clean_fixture_is_silent_everywhere() {
    let src = fixture("clean.rs");
    let violations = scan_source("clean.rs", &src, &RuleScope::all());
    assert!(violations.is_empty(), "unexpected: {violations:?}");
    let a = analyze::analyze_source("crates/fixture/src/lib.rs", &src);
    assert!(a.report.is_empty(), "unexpected: {}", a.report.render());
}
