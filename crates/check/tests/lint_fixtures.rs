//! The lint pass self-test: every planted fixture violation must be
//! flagged, and the clean fixture must stay silent.

use mtm_check::lint::{scan_source, Rule, RuleScope};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn rule_lines(src: &str, rule: Rule) -> Vec<usize> {
    scan_source("fixture.rs", src, &RuleScope::all())
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn panic_site_fixture_is_flagged() {
    let src = fixture("panic_site.rs");
    let lines = rule_lines(&src, Rule::PanicSite);
    // unwrap, expect and panic! each flagged once; the unwrap inside
    // #[cfg(test)] is not.
    assert_eq!(lines.len(), 3, "flagged lines: {lines:?}");
}

#[test]
fn float_eq_fixture_is_flagged() {
    let src = fixture("float_eq.rs");
    let lines = rule_lines(&src, Rule::FloatCmp);
    // `== 0.0` and `!= 1.0e-9` flagged; the annotated sentinel and the
    // integer compare are not.
    assert_eq!(lines.len(), 2, "flagged lines: {lines:?}");
}

#[test]
fn unsafe_fixture_is_flagged() {
    let src = fixture("unsafe_no_safety.rs");
    let lines = rule_lines(&src, Rule::UnsafeNoSafety);
    // The undocumented unsafe block is flagged; the SAFETY-commented one
    // is not.
    assert_eq!(lines.len(), 1, "flagged lines: {lines:?}");
}

#[test]
fn missing_panics_doc_fixture_is_flagged() {
    let src = fixture("missing_panics_doc.rs");
    let lines = rule_lines(&src, Rule::MissingPanicsDoc);
    // `head` lacks the section; `documented_head` has it; `total` cannot
    // panic.
    assert_eq!(lines.len(), 1, "flagged lines: {lines:?}");
}

#[test]
fn clean_fixture_is_silent() {
    let src = fixture("clean.rs");
    let violations = scan_source("clean.rs", &src, &RuleScope::all());
    assert!(violations.is_empty(), "unexpected: {violations:?}");
}
