//! The repo-level gate, wired into `cargo test`: the workspace's own
//! library code must pass the lint rules and the AST analyze pass
//! (zero unannotated taint/float findings), and the panic/index/div
//! site counts must not exceed the ceilings in `check/ratchet.toml`.

use std::path::PathBuf;

use mtm_check::analyze;
use mtm_check::lint;
use mtm_check::ratchet::Ratchet;

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

#[test]
fn workspace_has_no_lint_violations() {
    let report = lint::scan_workspace(&workspace_root()).expect("scan workspace");
    let all: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(all.is_empty(), "lint violations:\n{}", all.join("\n"));
}

#[test]
fn workspace_analyze_is_clean_and_within_ratchet() {
    let root = workspace_root();
    let analysis = analyze::analyze_workspace(&root).expect("parse workspace");
    assert!(
        analysis.report.is_empty(),
        "analyze findings (fix, or annotate sanctioned sites with \
         `// mtm-allow: <key> -- <reason>`):\n{}",
        analysis.report.render()
    );
    let text = std::fs::read_to_string(root.join("check/ratchet.toml"))
        .expect("check/ratchet.toml exists — regenerate with `cargo run -p mtm-check -- analyze --update-ratchet`");
    let ratchet = Ratchet::parse(&text).expect("ratchet parses");
    let (failures, _tighten) = ratchet.compare(&analysis.counts);
    assert!(
        failures.is_empty(),
        "panic-path ratchet violated (counts can only go down):\n{}",
        failures.join("\n")
    );
}

#[test]
fn runner_crate_stays_panic_free() {
    // The execution engine must not gain panic paths: its budget is
    // pinned at zero (zero-count units are omitted from the file).
    let analysis = analyze::analyze_workspace(&workspace_root()).expect("parse workspace");
    let runner = analysis.counts.get("crates/runner");
    assert_eq!(
        runner.map_or(0, |c| c.panic_sites),
        0,
        "crates/runner grew panic sites: {runner:?}"
    );
}

#[test]
fn ratchet_rejects_synthetic_increase() {
    // Simulate a PR adding one panic site to every unit: the recorded
    // file must reject each of them.
    let root = workspace_root();
    let analysis = analyze::analyze_workspace(&root).expect("parse workspace");
    let text = std::fs::read_to_string(root.join("check/ratchet.toml")).expect("ratchet file");
    let ratchet = Ratchet::parse(&text).expect("ratchet parses");
    let mut inflated = analysis.counts.clone();
    for counts in inflated.values_mut() {
        counts.panic_sites += 1;
    }
    inflated
        .entry("crates/brand-new".to_string())
        .or_default()
        .panic_sites = 1;
    let (failures, _) = ratchet.compare(&inflated);
    assert!(
        failures.len() >= inflated.len(),
        "an increase in any unit must fail the ratchet: {failures:?}"
    );
    assert!(failures.iter().any(|f| f.contains("crates/brand-new")));
}
