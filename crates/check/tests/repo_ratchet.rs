//! The repo-level gate, wired into `cargo test`: the workspace's own
//! library code must pass every hard lint rule, and the panic-site count
//! must not exceed the ceilings recorded in `check/ratchet.toml`.

use std::path::PathBuf;

use mtm_check::lint;
use mtm_check::ratchet::Ratchet;

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

#[test]
fn workspace_has_no_hard_lint_violations() {
    let report = lint::scan_workspace(&workspace_root()).expect("scan workspace");
    let hard: Vec<String> = report.hard_failures().map(|v| v.to_string()).collect();
    assert!(hard.is_empty(), "lint violations:\n{}", hard.join("\n"));
}

#[test]
fn panic_sites_do_not_exceed_ratchet() {
    let root = workspace_root();
    let report = lint::scan_workspace(&root).expect("scan workspace");
    let text = std::fs::read_to_string(root.join("check/ratchet.toml"))
        .expect("check/ratchet.toml exists — regenerate with `cargo run -p mtm-check -- lint --update-ratchet`");
    let ratchet = Ratchet::parse(&text).expect("ratchet parses");
    let (failures, _tighten) = ratchet.compare(&report.panic_counts());
    assert!(
        failures.is_empty(),
        "panic-site ratchet violated (the count can only go down):\n{}",
        failures.join("\n")
    );
}

#[test]
fn ratchet_rejects_synthetic_increase() {
    // Simulate a PR adding one panic site to every unit: the recorded file
    // must reject each of them.
    let root = workspace_root();
    let report = lint::scan_workspace(&root).expect("scan workspace");
    let text = std::fs::read_to_string(root.join("check/ratchet.toml")).expect("ratchet file");
    let ratchet = Ratchet::parse(&text).expect("ratchet parses");
    let mut inflated = report.panic_counts();
    for count in inflated.values_mut() {
        *count += 1;
    }
    inflated.entry("crates/brand-new".to_string()).or_insert(1);
    let (failures, _) = ratchet.compare(&inflated);
    assert!(
        failures.len() >= inflated.len().min(1),
        "an increase in any unit must fail the ratchet: {failures:?}"
    );
    assert!(failures.iter().any(|f| f.contains("crates/brand-new")));
}
