//! Planted stale annotations: an `mtm-lock:` comment attached to
//! nothing, and an `mtm-allow: lock` that suppresses nothing. Both are
//! hard errors — a detached name silently un-names a lock, and a dead
//! sanction hides the next real finding at that site.

use std::sync::Mutex;

/// The only lock here — never actually named `core`.
pub static Q: Mutex<u32> = Mutex::new(0);

// mtm-lock: core

// The blank lines above and below detach the annotation from any
// acquisition or function signature — it names nothing.

/// Reads the counter; the allow above the acquisition sanctions a
/// blocking site that does not exist.
pub fn read_it() -> u32 {
    // mtm-allow: lock -- nothing blocks while the guard is live
    let Ok(g) = Q.lock() else { return 0 };
    *g
}
