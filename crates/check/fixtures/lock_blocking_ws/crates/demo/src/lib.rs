//! Planted blocking-under-lock: a file write and an fsync run while the
//! `LOG` guard is live.

use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// The lock the fixture holds across IO.
pub static LOG: Mutex<u32> = Mutex::new(0);

/// Writes and syncs a checkpoint while holding `LOG` — both sites must
/// be flagged and charged to the (absent) `blocking_under_lock` budget.
pub fn checkpoint(path: &Path, data: &[u8]) {
    let Ok(mut file) = std::fs::File::create(path) else {
        return;
    };
    let Ok(mut g) = LOG.lock() else { return };
    *g += 1;
    let _ = file.write_all(data);
    let _ = file.sync_all();
}
