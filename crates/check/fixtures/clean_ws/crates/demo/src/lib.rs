//! A clean member: one sanctioned (annotated) wall-clock sink, one
//! budgeted index site, nothing else.

use std::time::Instant;

pub struct TrialRecord {
    pub throughput: f64,
    pub wall_s: f64,
}

// mtm-allow: wall-clock -- wall time is the sanctioned cost metric here
pub fn record(throughput: f64) -> TrialRecord {
    let t0 = Instant::now();
    let wall_s = t0.elapsed().as_secs_f64();
    TrialRecord { throughput, wall_s }
}

pub fn pick(xs: &[f64], i: usize) -> f64 {
    xs[i].max(0.0)
}

// mtm-hot: score-loop
pub fn accumulate(xs: &[f64], out: &mut Vec<f64>) {
    for &x in xs {
        // mtm-allow: alloc -- amortized: capacity reserved by the caller
        out.push(x * 2.0);
    }
}
