//! Planted findings for the mtm-check CLI integration test: unannotated
//! wall-clock taint into a record sink, a stale allow, a float `==`,
//! and an annotation with no reason.

use std::time::Instant;

pub struct TrialRecord {
    pub throughput: f64,
    pub wall_s: f64,
}

// mtm-allow: rng -- stale: nothing below draws randomness
pub fn record(throughput: f64) -> TrialRecord {
    let t0 = Instant::now();
    let wall_s = t0.elapsed().as_secs_f64();
    TrialRecord { throughput, wall_s }
}

pub fn converged(residual: f64) -> bool {
    residual == 0.0
}

// mtm-allow: wall-clock
pub fn missing_reason() -> u32 {
    1
}

// mtm-hot: inner-loop
pub fn hot_loop(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    apply(xs, |x| acc += x);
    acc
}

pub fn apply(xs: &[f64], mut f: impl FnMut(f64)) {
    for &x in xs {
        f(x);
    }
}

/// Cold on its face, but it hands a closure to the hot `apply`, so the
/// seam drags the closure body into the hot scan.
pub fn labels(xs: &[f64]) -> Vec<String> {
    let mut out = Vec::with_capacity(xs.len());
    apply(xs, |x| out.push(format!("{x}")));
    out
}
