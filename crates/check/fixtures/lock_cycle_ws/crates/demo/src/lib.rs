//! Planted lock-order cycle: `A` is acquired while `B` is held and `B`
//! while `A` is held, so either order edge closes a deadlock cycle.

use std::sync::Mutex;

/// First lock.
pub static A: Mutex<u32> = Mutex::new(0);
/// Second lock.
pub static B: Mutex<u32> = Mutex::new(0);

/// Takes `A`, then `B` — the forward half of the cycle.
pub fn forward() -> u32 {
    let Ok(ga) = A.lock() else { return 0 };
    let Ok(gb) = B.lock() else { return 0 };
    *ga + *gb
}

/// Takes `B`, then `A` — the backward half of the cycle.
pub fn backward() -> u32 {
    let Ok(gb) = B.lock() else { return 0 };
    let Ok(ga) = A.lock() else { return 0 };
    *ga - *gb
}
