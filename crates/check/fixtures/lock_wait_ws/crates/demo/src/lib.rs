//! Planted guard-across-wait: the `STATE` guard stays live across a
//! `Condvar::wait` on a *different* mutex — the wait releases only its
//! own lock, so `STATE` blocks every other thread for the whole park.

use std::sync::{Condvar, Mutex};

/// The foreign lock held across the wait.
pub static STATE: Mutex<u32> = Mutex::new(0);
/// The condvar's own mutex.
pub static DONE: Mutex<bool> = Mutex::new(false);
/// Wakes parked waiters.
pub static CV: Condvar = Condvar::new();

/// Parks on `CV` while still holding the `STATE` guard.
pub fn wait_holding_foreign() -> u32 {
    let Ok(extra) = STATE.lock() else { return 0 };
    let Ok(mut g) = DONE.lock() else { return 0 };
    while !*g {
        let Ok(next) = CV.wait(g) else { return 0 };
        g = next;
    }
    *extra
}
