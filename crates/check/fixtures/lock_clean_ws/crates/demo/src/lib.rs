//! The must-NOT-flag cases: a guard explicitly `drop()`-ed before the
//! IO it would otherwise cover, and a condvar wait that holds only its
//! own guard. A pass that flags either is over-approximating past its
//! documented model.

use std::io::Write;
use std::path::Path;
use std::sync::{Condvar, Mutex};

/// The counter lock — released before any IO below.
pub static COUNT: Mutex<u64> = Mutex::new(0);
/// The condvar's own mutex.
pub static READY: Mutex<bool> = Mutex::new(false);
/// Wakes parked waiters.
pub static CV: Condvar = Condvar::new();

/// Bumps the counter, drops the guard, then logs — the write happens
/// after the region ends, so nothing may be charged.
pub fn bump_then_log(path: &Path) {
    let Ok(mut g) = COUNT.lock() else { return };
    *g += 1;
    let n = *g;
    drop(g);
    let Ok(mut file) = std::fs::File::create(path) else {
        return;
    };
    let _ = writeln!(file, "count {n}");
}

/// The canonical condvar loop: the wait consumes and returns the same
/// guard it parks on. Its own mutex is released during the park, and no
/// other guard is live.
pub fn park() -> bool {
    let Ok(mut g) = READY.lock() else { return false };
    while !*g {
        let Ok(next) = CV.wait(g) else { return false };
        g = next;
    }
    *g
}
