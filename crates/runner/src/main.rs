//! The `mtm-runner` command-line tool.
//!
//! ```text
//! cargo run -p mtm-runner --release -- run    [--scale paper|fast|smoke] [--threads N]
//!                                             [--memoize] [--fail-rate F]
//! cargo run -p mtm-runner --release -- resume [same flags]
//! cargo run -p mtm-runner --release -- status [--scale ...]
//! cargo run -p mtm-runner --release -- bench  [--threads N]
//! ```
//!
//! `run` executes the Figs. 4–7 grid from scratch (wiping this scale's
//! journal segments first); `resume` continues from whatever the journal
//! already holds — completed cells load instantly, partial cells replay
//! their journaled trials into the strategy and continue measuring.
//! `status` inspects the segments without executing anything. `bench`
//! times serial vs. parallel vs. resumed execution at smoke scale and
//! writes the machine-readable `BENCH_runner.json` perf record.
//!
//! Exit code 0 on success, 1 on an execution/journal error, 2 on usage
//! errors.

use std::process::ExitCode;

use mtm_core::objective::synthetic_base;
use mtm_core::{Objective, ParamSet, RunOptions as CoreRunOptions, Strategy};
use mtm_runner::engine::{run_experiment_journaled, RunnerOptions};
use mtm_runner::fault::FaultPlan;
use mtm_runner::grid::{self, CellState, GRID_SEED};
use mtm_runner::progress::Progress;
use mtm_runner::{journal_root, pool, Scale};
use mtm_stormsim::ClusterSpec;
use mtm_topogen::{make_condition, Condition, SizeClass};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().unwrap_or("");
    let rest: Vec<&str> = it.collect();

    let parsed = match Flags::parse(&rest) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("mtm-runner: {msg}");
            return usage();
        }
    };

    let outcome = match cmd {
        "run" => cmd_run(&parsed, false),
        "resume" => cmd_run(&parsed, true),
        "status" => cmd_status(&parsed),
        "bench" => cmd_bench(&parsed),
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mtm-runner: {msg}");
            ExitCode::from(1)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: mtm-runner <run | resume | status | bench> \
         [--scale paper|fast|smoke] [--threads N] [--memoize] [--fail-rate F]"
    );
    ExitCode::from(2)
}

struct Flags {
    scale: Scale,
    ropts: RunnerOptions,
}

impl Flags {
    fn parse(rest: &[&str]) -> Result<Flags, String> {
        let mut scale = Scale::from_env();
        let mut ropts = RunnerOptions {
            threads: pool::default_threads(),
            ..RunnerOptions::serial()
        };
        let mut it = rest.iter();
        while let Some(&flag) = it.next() {
            match flag {
                "--scale" => {
                    let value = it.next().ok_or("--scale needs a value")?;
                    scale = Scale::parse(value).ok_or_else(|| format!("bad scale '{value}'"))?;
                }
                "--threads" => {
                    let value = it.next().ok_or("--threads needs a value")?;
                    ropts.threads = value
                        .parse::<usize>()
                        .map_err(|e| format!("bad thread count '{value}': {e}"))?;
                }
                "--memoize" => ropts.memoize = true,
                "--fail-rate" => {
                    let value = it.next().ok_or("--fail-rate needs a value")?;
                    let rate = value
                        .parse::<f64>()
                        .map_err(|e| format!("bad fail rate '{value}': {e}"))?;
                    ropts.faults = FaultPlan::with_rate(rate);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(Flags { scale, ropts })
    }
}

fn cmd_run(flags: &Flags, resume: bool) -> Result<(), String> {
    let root = journal_root();
    if !resume {
        grid::clear_segments(flags.scale, &root).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "[runner] {} grid at scale '{}' on {} thread(s), journal under {}",
        if resume { "resuming" } else { "running" },
        flags.scale.label(),
        flags.ropts.threads.max(1),
        root.display()
    );
    let progress = Progress::stderr("runner");
    let t0 = std::time::Instant::now();
    let (grid, report) = grid::run_journaled(flags.scale, &flags.ropts, &root, resume, &progress)
        .map_err(|e| e.to_string())?;
    let wall = t0.elapsed().as_secs_f64();

    println!("{:<40} {:>14} {:>10}", "cell", "mean tuples/s", "best step");
    for cell in &grid.cells {
        println!(
            "{:<40} {:>14.0} {:>10}",
            format!(
                "{}/{}/{}",
                cell.size.label(),
                grid::condition_slug(&cell.condition),
                cell.strategy
            ),
            cell.result.mean(),
            cell.result.winner().best_step,
        );
    }
    eprintln!(
        "[runner] done in {wall:.1}s — {} cells ({} resumed), {} trials ({} measured, {} replayed, {} memo hits, {} injected failures)",
        report.cells,
        report.cells_resumed,
        report.stats.trials(),
        report.stats.measured,
        report.stats.replayed,
        report.stats.cache_hits,
        report.stats.injected_failures,
    );
    Ok(())
}

fn cmd_status(flags: &Flags) -> Result<(), String> {
    let root = journal_root();
    let rows = grid::status(flags.scale, &flags.ropts, &root).map_err(|e| e.to_string())?;
    let mut complete = 0usize;
    let mut partial = 0usize;
    println!("{:<44} state", "cell");
    for row in &rows {
        let state = match &row.state {
            CellState::Missing => "missing".to_string(),
            CellState::Stale => "stale (will re-run)".to_string(),
            CellState::Partial(trials, passes) => {
                partial += 1;
                format!("partial: {trials} trials, {passes} pass(es) done")
            }
            CellState::Complete => {
                complete += 1;
                "complete".to_string()
            }
        };
        println!("{:<44} {state}", row.id);
    }
    println!(
        "\n{complete}/{} complete, {partial} partial — journal under {}",
        rows.len(),
        root.display()
    );
    Ok(())
}

/// The machine-readable perf record `bench` writes.
#[derive(serde::Serialize)]
struct BenchRecord {
    bench: &'static str,
    scale: &'static str,
    cells: usize,
    threads: usize,
    serial_wall_s: f64,
    parallel_wall_s: f64,
    speedup: f64,
    trials_per_run: u64,
    memo_unmemoized_wall_s: f64,
    memo_memoized_wall_s: f64,
    memo_trials: u64,
    memo_cache_hits: u64,
    memo_cache_hit_rate: f64,
    resume_wall_s: f64,
    resume_replayed_trials: u64,
}

fn cmd_bench(flags: &Flags) -> Result<(), String> {
    let scale = Scale::Smoke;
    let threads = flags.ropts.threads.max(2);
    let quiet = Progress::quiet();

    eprintln!("[bench] smoke grid, serial");
    let t0 = std::time::Instant::now();
    let (grid_serial, report_serial) = grid::run_journaled(
        scale,
        &RunnerOptions::serial(),
        &bench_dir("serial")?,
        false,
        &quiet,
    )
    .map_err(|e| e.to_string())?;
    let serial_wall_s = t0.elapsed().as_secs_f64();

    eprintln!("[bench] smoke grid, {threads} threads");
    let t0 = std::time::Instant::now();
    let (grid_parallel, report_parallel) = grid::run_journaled(
        scale,
        &RunnerOptions::parallel(threads),
        &bench_dir("parallel")?,
        false,
        &quiet,
    )
    .map_err(|e| e.to_string())?;
    let parallel_wall_s = t0.elapsed().as_secs_f64();

    // Sanity: the determinism contract, enforced at bench time too.
    for (a, b) in grid_serial.cells.iter().zip(&grid_parallel.cells) {
        if mtm_runner::canonical_result_json(&a.result)
            != mtm_runner::canonical_result_json(&b.result)
        {
            return Err(format!(
                "parallel grid diverged from serial at cell {}/{}",
                a.size.label(),
                a.strategy
            ));
        }
    }

    // Memoization leg: the grid's protocol measures each proposal once, so
    // the grid never revisits a config hash. Bench the memo cache where it
    // actually applies — a repeated-measurement experiment
    // (`measure_reps: 3`): repetitions 2 and 3 of every step are
    // guaranteed cache hits when memoization is on.
    eprintln!("[bench] repeated-measurement experiment, memoization off vs on");
    let topo = make_condition(
        SizeClass::Medium,
        &Condition {
            time_imbalance: 0.5,
            contention: 0.25,
        },
        GRID_SEED,
    );
    let base = synthetic_base(&topo);
    let objective = Objective::new(topo, ClusterSpec::paper_cluster()).with_base(base);
    let topo_ref = objective.topology().clone();
    let make = move |seed: u64| Strategy::bo(&topo_ref, ParamSet::Hints, seed);
    let memo_run_opts = CoreRunOptions {
        max_steps: 20,
        measure_reps: 3,
        confirm_reps: 5,
        passes: 2,
        seed: GRID_SEED,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let plain = run_experiment_journaled(
        "bench/memo-off",
        &make,
        &objective,
        &memo_run_opts,
        &RunnerOptions::serial(),
        None,
        false,
    )
    .map_err(|e| e.to_string())?;
    let memo_unmemoized_wall_s = t0.elapsed().as_secs_f64();
    let memo_opts = RunnerOptions {
        memoize: true,
        ..RunnerOptions::serial()
    };
    let t0 = std::time::Instant::now();
    let memo = run_experiment_journaled(
        "bench/memo-on",
        &make,
        &objective,
        &memo_run_opts,
        &memo_opts,
        None,
        false,
    )
    .map_err(|e| e.to_string())?;
    let memo_memoized_wall_s = t0.elapsed().as_secs_f64();
    let _ = plain;

    eprintln!("[bench] resume of the completed serial journal");
    let t0 = std::time::Instant::now();
    let (_, report_resume) = grid::run_journaled(
        scale,
        &RunnerOptions::serial(),
        &bench_dir_existing("serial"),
        true,
        &quiet,
    )
    .map_err(|e| e.to_string())?;
    let resume_wall_s = t0.elapsed().as_secs_f64();

    let memo_total = memo.stats.trials().max(1);
    let record = BenchRecord {
        bench: "runner",
        scale: scale.label(),
        cells: report_serial.cells,
        threads,
        serial_wall_s,
        parallel_wall_s,
        speedup: serial_wall_s / parallel_wall_s.max(1e-9),
        trials_per_run: report_serial.stats.trials(),
        memo_unmemoized_wall_s,
        memo_memoized_wall_s,
        memo_trials: memo.stats.trials(),
        memo_cache_hits: memo.stats.cache_hits,
        memo_cache_hit_rate: memo.stats.cache_hits as f64 / memo_total as f64,
        resume_wall_s,
        resume_replayed_trials: report_resume.stats.replayed,
    };
    let json =
        serde_json::to_string_pretty(&record).map_err(|e| format!("serialize record: {e}"))?;
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_runner.json");
    std::fs::write(&path, format!("{json}\n"))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("{json}");
    eprintln!("[bench] wrote {}", path.display());
    let _ = report_parallel; // counts match serial by construction
    Ok(())
}

fn bench_dir(tag: &str) -> Result<std::path::PathBuf, String> {
    let dir = journal_root().join("bench").join(tag);
    // Fresh timing run: wipe leftovers so nothing replays.
    match std::fs::remove_dir_all(&dir) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("clear {}: {e}", dir.display())),
    }
    Ok(dir)
}

fn bench_dir_existing(tag: &str) -> std::path::PathBuf {
    journal_root().join("bench").join(tag)
}
