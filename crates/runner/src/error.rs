//! Runner error type.

use std::fmt;

/// Anything that can go wrong while journaling or executing experiments.
/// The engine never panics on these: callers decide whether to fall back
/// to in-memory execution (the bench harness does) or abort (the CLI).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerError {
    /// Filesystem-level failure (open/append/flush/truncate).
    Io(String),
    /// A journal segment that cannot be trusted (bad header, wrong
    /// schema, fingerprint mismatch that the caller asked to treat as
    /// fatal).
    Corrupt(String),
    /// Invalid caller input (unknown strategy label, bad CLI argument).
    Invalid(String),
    /// The run observed its session abort flag and stopped between
    /// trials. Nothing is corrupted: journaled trials stay valid and a
    /// later resume completes the experiment bitwise-identically.
    Canceled,
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Io(m) => write!(f, "journal I/O: {m}"),
            RunnerError::Corrupt(m) => write!(f, "journal corrupt: {m}"),
            RunnerError::Invalid(m) => write!(f, "invalid input: {m}"),
            RunnerError::Canceled => write!(f, "run canceled by session abort"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<std::io::Error> for RunnerError {
    fn from(e: std::io::Error) -> Self {
        RunnerError::Io(e.to_string())
    }
}
