//! The Figs. 4–7 experiment grid, executed by the runner.
//!
//! Every `(condition, size, strategy)` cell of §V-A is one independent
//! work unit: it gets its own journal segment under
//! `<journal root>/grid_<scale>/`, its own deterministic seeds, and can
//! run on any pool thread. This replaces the old monolithic
//! `grid_<scale>.json` cache — per-cell segments resume partially, and
//! their headers carry seed + schema + budget fingerprints so a changed
//! protocol re-runs instead of silently serving stale numbers.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use mtm_core::objective::synthetic_base;
use mtm_core::{ExperimentResult, Objective, ParamSet, Strategy};
use mtm_stormsim::ClusterSpec;
use mtm_topogen::{make_condition, Condition, SizeClass};

use crate::engine::{run_experiment_journaled, RunnerOptions, TrialStats};
use crate::error::RunnerError;
use crate::journal::load_segment;
use crate::progress::Progress;
use crate::scale::Scale;

/// Strategy labels of the grid: the paper's four (plus the 180-step BO
/// budget ablation) in figure order, then the strategy zoo — the
/// random-search floor, TPE, and Hyperband — appended so existing cell
/// enumeration prefixes stay stable.
pub const STRATEGIES: [&str; 8] = [
    "pla",
    "bo",
    "ipla",
    "ibo",
    "bo180",
    "random",
    "tpe",
    "hyperband",
];

/// Base seed of the grid (also seeds topology generation per cell).
pub const GRID_SEED: u64 = 0x2015;

/// One grid cell: a full experiment outcome plus its coordinates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Topology size class.
    pub size: SizeClass,
    /// Workload condition.
    pub condition: Condition,
    /// Strategy label (see [`STRATEGIES`]).
    pub strategy: String,
    /// The experiment outcome.
    pub result: ExperimentResult,
}

/// The whole grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    /// Budget scale the grid was run at.
    pub scale: Scale,
    /// Base seed.
    pub seed: u64,
    /// All cells.
    pub cells: Vec<Cell>,
}

impl Grid {
    /// Look up a cell.
    pub fn cell(&self, size: SizeClass, condition: &Condition, strategy: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.size == size && c.condition == *condition && c.strategy == strategy)
    }
}

/// Coordinates of one cell, in the grid's canonical enumeration order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCoord {
    /// Topology size class.
    pub size: SizeClass,
    /// Workload condition.
    pub condition: Condition,
    /// Strategy label.
    pub strategy: &'static str,
}

/// Every cell, in the order the figures enumerate them (conditions ×
/// sizes × strategies). Serial and parallel execution both report cells
/// in exactly this order.
pub fn cells() -> Vec<CellCoord> {
    let mut out = Vec::new();
    for condition in Condition::grid() {
        for size in SizeClass::all() {
            for strategy in STRATEGIES {
                out.push(CellCoord {
                    size,
                    condition,
                    strategy,
                });
            }
        }
    }
    out
}

/// Human-readable experiment id of a cell (journal headers, status
/// output).
pub fn cell_id(scale: Scale, coord: &CellCoord) -> String {
    format!(
        "grid-{}/{}/{}/{}",
        scale.label(),
        coord.size.label(),
        condition_slug(&coord.condition),
        coord.strategy
    )
}

/// Filesystem-safe condition label: `ti<pct>_cont<pct>`.
pub fn condition_slug(c: &Condition) -> String {
    format!(
        "ti{}_cont{}",
        (c.time_imbalance * 100.0) as u32,
        (c.contention * 100.0) as u32
    )
}

/// Journal segment path of a cell under `root`.
pub fn segment_path(root: &Path, scale: Scale, coord: &CellCoord) -> PathBuf {
    root.join(format!("grid_{}", scale.label())).join(format!(
        "{}_{}_{}.jsonl",
        coord.size.label(),
        condition_slug(&coord.condition),
        coord.strategy
    ))
}

/// Run one cell (journaled when `segment` is given).
fn run_cell(
    coord: &CellCoord,
    scale: Scale,
    ropts: &RunnerOptions,
    segment: Option<&Path>,
    resume: bool,
) -> Result<(Cell, TrialStats), RunnerError> {
    let topo = make_condition(coord.size, &coord.condition, GRID_SEED);
    let base = synthetic_base(&topo);
    let objective = Objective::new(topo, ClusterSpec::paper_cluster()).with_base(base);
    let opts = if coord.strategy == "bo180" {
        scale.run_options_extended(GRID_SEED)
    } else {
        scale.run_options(GRID_SEED)
    };
    let strategy_label = coord.strategy;
    let topo_ref = objective.topology().clone();
    let make_strategy = move |seed: u64| -> Strategy {
        match strategy_label {
            "pla" => Strategy::pla(),
            "ipla" => Strategy::ipla(&topo_ref),
            "bo" | "bo180" => Strategy::bo(&topo_ref, ParamSet::Hints, seed),
            "random" => Strategy::random(&topo_ref, ParamSet::Hints, seed),
            "tpe" => Strategy::tpe(&topo_ref, ParamSet::Hints, seed),
            "hyperband" => Strategy::hyperband(&topo_ref, ParamSet::Hints, seed),
            // `ibo` — and the unreachable fallback, kept total so the
            // engine never panics on a foreign label.
            _ => Strategy::ibo(&topo_ref, seed),
        }
    };
    if !STRATEGIES.contains(&coord.strategy) {
        return Err(RunnerError::Invalid(format!(
            "unknown strategy '{}'",
            coord.strategy
        )));
    }
    let outcome = run_experiment_journaled(
        &cell_id(scale, coord),
        &make_strategy,
        &objective,
        &opts,
        ropts,
        segment,
        resume,
    )?;
    Ok((
        Cell {
            size: coord.size,
            condition: coord.condition,
            strategy: coord.strategy.to_string(),
            result: outcome.result,
        },
        outcome.stats,
    ))
}

/// Aggregate statistics of one grid execution.
#[derive(Debug, Default, Clone, Copy, Serialize)]
pub struct GridReport {
    /// Trial statistics summed over all cells.
    pub stats: TrialStats,
    /// Cells loaded fully or partially from journal segments.
    pub cells_resumed: usize,
    /// Total cells executed.
    pub cells: usize,
}

/// Run the full grid **in memory** (no journal, serial-equivalent
/// semantics). Infallible: the in-memory engine has no I/O to fail on.
pub fn run(scale: Scale, ropts: &RunnerOptions) -> Grid {
    match run_inner(scale, ropts, None, false, &Progress::quiet()) {
        Ok((grid, _)) => grid,
        // Unreachable without a journal; satisfy totality with an empty
        // grid rather than a panic site.
        Err(_) => Grid {
            scale,
            seed: GRID_SEED,
            cells: Vec::new(),
        },
    }
}

/// Run (or resume) the journaled grid under `journal_root`.
/// `resume: false` wipes existing segments for this scale first.
pub fn run_journaled(
    scale: Scale,
    ropts: &RunnerOptions,
    journal_root: &Path,
    resume: bool,
    progress: &Progress,
) -> Result<(Grid, GridReport), RunnerError> {
    run_inner(scale, ropts, Some(journal_root), resume, progress)
}

fn run_inner(
    scale: Scale,
    ropts: &RunnerOptions,
    journal_root: Option<&Path>,
    resume: bool,
    progress: &Progress,
) -> Result<(Grid, GridReport), RunnerError> {
    let coords = cells();
    progress.reset(coords.len());
    // Cells are the outermost (and widest) unit of independence: fan them
    // across the pool and run each cell's passes/confirms serially inside
    // it — one saturation layer, no nested thread explosion.
    let cell_ropts = RunnerOptions {
        threads: 1,
        ..*ropts
    };
    let outcomes = crate::pool::run_indexed(coords.len(), ropts.threads, |i| {
        let coord = &coords[i];
        let segment = journal_root.map(|root| segment_path(root, scale, coord));
        let out = run_cell(coord, scale, &cell_ropts, segment.as_deref(), resume);
        if let Ok((cell, stats)) = &out {
            progress.tick(&format!(
                "{} mean {:.0} tuples/s ({} trials, {} replayed)",
                cell_id(scale, coord),
                cell.result.mean(),
                stats.trials(),
                stats.replayed,
            ));
        }
        out
    });

    let mut cells_out = Vec::with_capacity(coords.len());
    let mut report = GridReport {
        cells: coords.len(),
        ..GridReport::default()
    };
    for outcome in outcomes {
        let (cell, stats) = outcome?;
        if stats.replayed > 0 {
            report.cells_resumed += 1;
        }
        report.stats.merge(&stats);
        cells_out.push(cell);
    }
    Ok((
        Grid {
            scale,
            seed: GRID_SEED,
            cells: cells_out,
        },
        report,
    ))
}

/// Completion state of one cell's journal segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellState {
    /// No segment on disk.
    Missing,
    /// Segment exists but its header does not match the current protocol
    /// (stale seed/budget/schema) or is unreadable.
    Stale,
    /// Partially executed: `(journaled trial records, completed passes)`.
    Partial(usize, usize),
    /// Experiment finished.
    Complete,
}

/// Status row for one cell.
#[derive(Debug, Clone)]
pub struct CellStatus {
    /// Experiment id.
    pub id: String,
    /// Segment state.
    pub state: CellState,
}

/// Inspect the journal segments of `scale` under `journal_root` without
/// executing anything.
pub fn status(
    scale: Scale,
    ropts: &RunnerOptions,
    journal_root: &Path,
) -> Result<Vec<CellStatus>, RunnerError> {
    let mut rows = Vec::new();
    for coord in cells() {
        let id = cell_id(scale, &coord);
        let path = segment_path(journal_root, scale, &coord);
        let opts = if coord.strategy == "bo180" {
            scale.run_options_extended(GRID_SEED)
        } else {
            scale.run_options(GRID_SEED)
        };
        let fp = crate::engine::fingerprint(&id, &opts, ropts);
        let state = match load_segment(&path)? {
            None => CellState::Missing,
            Some(data) => {
                let trusted = data.header.as_ref().is_some_and(|h| {
                    h.version == crate::journal::SCHEMA_VERSION
                        && h.exp_id == id
                        && h.seed == opts.seed
                        && h.fingerprint == fp
                });
                if !trusted {
                    CellState::Stale
                } else if data.done.is_some() {
                    CellState::Complete
                } else {
                    CellState::Partial(data.n_records(), data.passes.len())
                }
            }
        };
        rows.push(CellStatus { id, state });
    }
    Ok(rows)
}

/// Remove every journal segment of `scale` under `journal_root`.
pub fn clear_segments(scale: Scale, journal_root: &Path) -> Result<(), RunnerError> {
    let dir = journal_root.join(format!("grid_{}", scale.label()));
    match std::fs::remove_dir_all(&dir) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(RunnerError::Io(format!("remove {}: {e}", dir.display()))),
    }
}

/// Run the grid, loading every already-completed cell from its journal
/// segment and executing (or resuming) the rest — the replacement for the
/// old `run_or_load` JSON cache. Falls back to a plain in-memory run if
/// the journal directory is unusable.
pub fn run_or_load(scale: Scale, ropts: &RunnerOptions, journal_root: &Path) -> Grid {
    let progress = Progress::stderr("grid");
    match run_journaled(scale, ropts, journal_root, true, &progress) {
        Ok((grid, report)) => {
            eprintln!(
                "[grid] {} cells ({} resumed from journal, {} trials: {} measured / {} replayed / {} memo hits)",
                report.cells,
                report.cells_resumed,
                report.stats.trials(),
                report.stats.measured,
                report.stats.replayed,
                report.stats.cache_hits,
            );
            grid
        }
        Err(e) => {
            eprintln!("[grid] journal unusable ({e}) — running in memory");
            run(scale, ropts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_all_cells() {
        let grid = run(Scale::Smoke, &RunnerOptions::serial());
        assert_eq!(grid.cells.len(), 4 * 3 * STRATEGIES.len());
        for cell in &grid.cells {
            assert_eq!(
                cell.result.confirmation.len(),
                Scale::Smoke.confirms(),
                "every cell confirms"
            );
        }
        let c = grid
            .cell(
                SizeClass::Small,
                &Condition {
                    time_imbalance: 0.0,
                    contention: 0.0,
                },
                "pla",
            )
            .unwrap();
        assert_eq!(c.strategy, "pla");
    }

    #[test]
    fn cell_enumeration_is_stable_and_named() {
        let coords = cells();
        assert_eq!(coords.len(), 96);
        assert_eq!(
            cell_id(Scale::Smoke, &coords[0]),
            "grid-smoke/small/ti0_cont0/pla"
        );
        let path = segment_path(Path::new("/j"), Scale::Fast, &coords[1]);
        assert_eq!(path, Path::new("/j/grid_fast/small_ti0_cont0_bo.jsonl"));
    }
}
