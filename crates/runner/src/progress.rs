//! Progress and ETA reporting.
//!
//! Thread-safe counters the grid ticks as cells finish; the ETA is the
//! usual naive extrapolation (elapsed / done × remaining), which is
//! honest enough when units have comparable cost and clearly labelled as
//! an estimate when they don't.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Where progress lines go.
enum Output {
    Stderr,
    Quiet,
}

/// Shared progress state for one multi-unit run.
pub struct Progress {
    label: String,
    total: AtomicUsize,
    done: AtomicUsize,
    start: Mutex<Instant>,
    output: Output,
}

impl Progress {
    /// Progress that reports to stderr, prefixed `[label]`.
    pub fn stderr(label: &str) -> Progress {
        Progress {
            label: label.to_string(),
            total: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            start: Mutex::new(Instant::now()),
            output: Output::Stderr,
        }
    }

    /// Progress that swallows everything (tests, library callers).
    // mtm-allow: wall-clock -- start time feeds the human progress line
    // (elapsed/ETA on stderr), never a journaled or measured value.
    pub fn quiet() -> Progress {
        Progress {
            label: String::new(),
            total: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            start: Mutex::new(Instant::now()),
            output: Output::Quiet,
        }
    }

    /// Restart the counters for a run of `total` units.
    // mtm-allow: wall-clock -- restarts the display clock for the ETA
    // line on stderr; no journaled or measured value depends on it.
    pub fn reset(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
        self.done.store(0, Ordering::Relaxed);
        if let Ok(mut start) = self.start.lock() {
            *start = Instant::now();
        }
    }

    /// Units completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }

    /// Record one completed unit and (unless quiet) print a progress
    /// line with percentage, elapsed time and ETA.
    // mtm-allow: wall-clock -- elapsed/ETA are printed to stderr only;
    // the journal and result records never see them.
    pub fn tick(&self, detail: &str) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let total = self.total.load(Ordering::Relaxed).max(done);
        if matches!(self.output, Output::Quiet) {
            return;
        }
        // mtm-allow: lock -- the start guard is a match-head temporary dropped at the match's end; only the extracted f64 reaches the eprintln below
        let elapsed = match self.start.lock() {
            Ok(start) => start.elapsed().as_secs_f64(),
            Err(_) => 0.0,
        };
        let eta = if done > 0 {
            elapsed / done as f64 * (total - done) as f64
        } else {
            0.0
        };
        eprintln!(
            "[{}] {done}/{total} ({:.0}%) elapsed {elapsed:.1}s eta ~{eta:.1}s — {detail}",
            self.label,
            done as f64 / total as f64 * 100.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ticks() {
        let p = Progress::quiet();
        p.reset(3);
        p.tick("a");
        p.tick("b");
        assert_eq!(p.completed(), 2);
        p.reset(5);
        assert_eq!(p.completed(), 0);
    }
}
