//! Experiment budget scaling.
//!
//! Lives in the runner (rather than the bench harness) because the
//! execution engine keys journal fingerprints on the budget: a segment
//! recorded at one scale must never satisfy a request at another.

use mtm_core::RunOptions;
use serde::{Deserialize, Serialize};

/// How faithfully to reproduce the paper's budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's protocol: 60-step passes (180 for `bo180`), 2 passes,
    /// 30 confirmation runs.
    Paper,
    /// Reduced budgets: 30/90 steps, 2 passes, 10 confirmations.
    Fast,
    /// Seconds-scale smoke run used by integration tests.
    Smoke,
}

impl Scale {
    /// Read from `MTM_SCALE` (`paper` | `fast` | `smoke`), defaulting to
    /// `Paper`.
    pub fn from_env() -> Scale {
        match std::env::var("MTM_SCALE").as_deref() {
            Ok("fast") => Scale::Fast,
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Paper,
        }
    }

    /// Parse a scale label (`paper` | `fast` | `smoke`).
    pub fn parse(label: &str) -> Option<Scale> {
        match label {
            "paper" => Some(Scale::Paper),
            "fast" => Some(Scale::Fast),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }

    /// Steps of a standard optimization pass.
    pub fn steps(&self) -> usize {
        match self {
            Scale::Paper => 60,
            Scale::Fast => 30,
            Scale::Smoke => 6,
        }
    }

    /// Steps of the extended (`bo180`) pass.
    pub fn steps_extended(&self) -> usize {
        match self {
            Scale::Paper => 180,
            Scale::Fast => 90,
            Scale::Smoke => 12,
        }
    }

    /// Confirmation re-runs of the best configuration.
    pub fn confirms(&self) -> usize {
        match self {
            Scale::Paper => 30,
            Scale::Fast => 10,
            Scale::Smoke => 3,
        }
    }

    /// Optimization passes per experiment.
    pub fn passes(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            _ => 2,
        }
    }

    /// Label used in journal-segment directory names.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Fast => "fast",
            Scale::Smoke => "smoke",
        }
    }

    /// Standard run options at this scale.
    pub fn run_options(&self, seed: u64) -> RunOptions {
        RunOptions {
            max_steps: self.steps(),
            confirm_reps: self.confirms(),
            passes: self.passes(),
            seed,
            ..Default::default()
        }
    }

    /// Extended (`bo180`) run options at this scale.
    pub fn run_options_extended(&self, seed: u64) -> RunOptions {
        RunOptions {
            max_steps: self.steps_extended(),
            ..self.run_options(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_shrink_with_scale() {
        assert!(Scale::Paper.steps() > Scale::Fast.steps());
        assert!(Scale::Fast.steps() > Scale::Smoke.steps());
        assert_eq!(Scale::Paper.steps(), 60);
        assert_eq!(Scale::Paper.steps_extended(), 180);
        assert_eq!(Scale::Paper.confirms(), 30);
        assert_eq!(Scale::Paper.passes(), 2);
    }

    #[test]
    fn options_carry_budgets() {
        let o = Scale::Fast.run_options(9);
        assert_eq!(o.max_steps, 30);
        assert_eq!(o.seed, 9);
        let e = Scale::Fast.run_options_extended(9);
        assert_eq!(e.max_steps, 90);
    }

    #[test]
    fn labels_round_trip() {
        for s in [Scale::Paper, Scale::Fast, Scale::Smoke] {
            assert_eq!(Scale::parse(s.label()), Some(s));
        }
        assert_eq!(Scale::parse("warp"), None);
    }
}
