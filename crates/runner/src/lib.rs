//! # mtm-runner
//!
//! The workspace's journaled, resumable, fault-tolerant parallel
//! experiment execution engine. The §V protocol burns hours of
//! (simulated) cluster time on sequential two-minute trials; this crate
//! makes that execution durable, restartable infrastructure instead of an
//! all-or-nothing loop:
//!
//! * [`journal`] — append-only JSONL **trial journal**, one schema-versioned
//!   segment per experiment, flushed record-by-record so a crash loses at
//!   most the in-flight trial; headers fingerprint seed + budget + fault
//!   plan so stale segments are re-run, never silently served;
//! * [`engine`] — executes the protocol through `mtm_core`'s
//!   `propose`/`observe` interface, **replaying** journaled trials into a
//!   fresh strategy on resume (the surrogate is rebuilt, not stored),
//!   with a per-pass **memo cache** (config-hash → measurement) and a
//!   deterministic **fault plan** (injected failures, bounded retries);
//! * [`segment`] — the reusable segment machinery underneath the
//!   journal (byte-level longest-valid-prefix scan, append-only writer,
//!   atomic rotation) shared with `mtm-serve`'s session store;
//! * [`pool`] — bounded OS-thread fan-out with order-preserving result
//!   collection; combined with per-unit seed derivation, parallel runs
//!   are bitwise-identical to serial ones;
//! * [`grid`] — the Figs. 4–7 grid as 60 independent journaled cells
//!   (replaces the monolithic `grid_<scale>.json` cache);
//! * [`scale`] — the `paper`/`fast`/`smoke` budget scaling (moved here
//!   from `mtm-bench`; the bench crate re-exports it);
//! * the `mtm-runner` binary — `run | resume | status | bench` with
//!   progress/ETA reporting (see the README quickstart).
//!
//! Determinism contract: results are bitwise-identical across serial,
//! parallel, and interrupted-then-resumed execution — excluding only the
//! `optimizer_time_s` wall-clock fields, which
//! [`engine::canonical_result_json`] zeroes for comparisons.

pub mod engine;
pub mod error;
pub mod fault;
pub mod grid;
pub mod hash;
pub mod journal;
pub mod pool;
pub mod progress;
pub mod scale;
pub mod segment;

pub use engine::{
    canonical_result_json, fingerprint, run_experiment_journaled, run_experiment_session,
    run_experiment_traced, Outcome, RunnerOptions, TrialStats,
};
pub use error::RunnerError;
pub use fault::FaultPlan;
pub use grid::{Cell, Grid, STRATEGIES};
pub use scale::Scale;

use std::path::PathBuf;

/// Directory all runner/harness outputs go to (`results/` under the
/// workspace root, or `$MTM_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MTM_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // This crate lives at <root>/crates/runner.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Default journal root: `<results dir>/journal`.
pub fn journal_root() -> PathBuf {
    results_dir().join("journal")
}
