//! Deterministic fault injection and the retry policy.
//!
//! Real clusters drop trials: a worker dies, a run times out, a
//! measurement never reports. The runner's recovery path (retry with a
//! derived run id, journal the attempt count, give up after a bounded
//! number of tries) needs exercising without a real cluster, so failures
//! are *injected* — decided by a pure function of `(plan seed, run id,
//! attempt)`, which keeps serial, parallel and resumed runs identical.

use serde::{Deserialize, Serialize};

use crate::hash::{splitmix64, unit_f64};

/// Fault-injection and retry policy for one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any single measurement attempt fails.
    pub fail_rate: f64,
    /// Seed of the injection draws (independent of measurement noise).
    pub seed: u64,
    /// Extra attempts after the first failure; a trial that exhausts
    /// `1 + max_retries` attempts reports zero throughput (a "run that
    /// never came back", which the protocol already handles).
    pub max_retries: u32,
    /// Advisory wall-clock budget per measurement; exceeding it logs a
    /// warning but never alters results (a hard kill would make outcomes
    /// schedule-dependent).
    pub timeout_s: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            fail_rate: 0.0,
            seed: 0xFA11,
            max_retries: 2,
            timeout_s: 60.0,
        }
    }
}

impl FaultPlan {
    /// A plan that injects failures at `rate` (for tests and the CLI's
    /// `--fail-rate`).
    pub fn with_rate(rate: f64) -> FaultPlan {
        FaultPlan {
            fail_rate: rate.clamp(0.0, 1.0),
            ..Default::default()
        }
    }

    /// Deterministically decide whether attempt `attempt` of the
    /// measurement with `run_id` fails.
    pub fn injects_failure(&self, run_id: u64, attempt: u32) -> bool {
        if self.fail_rate <= 0.0 {
            return false;
        }
        let draw = splitmix64(
            self.seed
                ^ run_id.rotate_left(17)
                ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        unit_f64(draw) < self.fail_rate
    }

    /// Run id for retry attempt `attempt` of a trial whose first attempt
    /// used `base_run_id`. Attempt 0 is the base id itself, so a
    /// zero-fault run derives exactly the protocol's ids; retries salt
    /// the high bits to draw fresh measurement noise.
    pub fn attempt_run_id(&self, base_run_id: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            base_run_id
        } else {
            base_run_id.wrapping_add((attempt as u64) << 40)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails() {
        let plan = FaultPlan::default();
        for run in 0..500u64 {
            assert!(!plan.injects_failure(run, 0));
        }
    }

    #[test]
    fn rate_is_roughly_respected_and_deterministic() {
        let plan = FaultPlan::with_rate(0.3);
        let fails: usize = (0..10_000u64)
            .filter(|&r| plan.injects_failure(r, 0))
            .count();
        assert!(
            (2_400..3_600).contains(&fails),
            "expected ~30% failures, got {fails}/10000"
        );
        // Pure function: same inputs, same outcome.
        for r in 0..100u64 {
            assert_eq!(plan.injects_failure(r, 1), plan.injects_failure(r, 1));
        }
    }

    #[test]
    fn attempts_draw_independently() {
        let plan = FaultPlan::with_rate(0.5);
        let differs = (0..200u64).any(|r| plan.injects_failure(r, 0) != plan.injects_failure(r, 1));
        assert!(differs, "attempt index must reshuffle the draw");
    }

    #[test]
    fn attempt_zero_keeps_the_protocol_run_id() {
        let plan = FaultPlan::default();
        assert_eq!(plan.attempt_run_id(42, 0), 42);
        assert_ne!(plan.attempt_run_id(42, 1), 42);
        assert_ne!(plan.attempt_run_id(42, 1), plan.attempt_run_id(42, 2));
    }
}
