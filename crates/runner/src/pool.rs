//! Bounded deterministic fan-out.
//!
//! The vendored `rayon` is a sequential shim (no crates.io access), so
//! the runner brings its own minimal pool: scoped OS threads pulling unit
//! indices from an atomic counter. Results land in unit order regardless
//! of which thread ran what or in what order units finished — combined
//! with per-unit seed derivation this is what makes parallel runs
//! bitwise-identical to serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `n` independent work units on up to `threads` OS threads and
/// return their results **in unit order**. `threads <= 1` runs inline
/// with zero overhead. `f` must be freely callable from any thread; unit
/// index is the only scheduling-visible input it receives.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                // mtm-allow: lock -- the guard only wraps the Vec push; the IO the analyzer reaches is bare-name fan-out from `push`, never called here
                let mut guard = match results.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                guard.push((i, out));
            });
        }
    });

    let mut collected = match results.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, out)| out).collect()
}

/// The machine's available parallelism, defaulting to 1 when unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_unit_order() {
        let out = run_indexed(100, 8, |i| {
            // Stagger finish order: later units finish first.
            std::thread::sleep(std::time::Duration::from_micros((100 - i) as u64));
            i * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = run_indexed(37, 1, |i| i as u64 * 17 + 5);
        let parallel = run_indexed(37, 6, |i| i as u64 * 17 + 5);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_edge_counts() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i), vec![0]);
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }
}
