//! The append-only trial journal.
//!
//! One experiment writes one **segment**: a JSONL file whose first line is
//! a schema-versioned [`Header`] and whose remaining lines are
//! [`Record`]s, appended and flushed one at a time so a crash loses at
//! most the line being written. The reader tolerates exactly that
//! failure: it parses the longest valid prefix, reports its byte length,
//! and the writer truncates to it before appending — a torn trailing line
//! is indistinguishable from a clean stop.
//!
//! Staleness safety (the flaw the old `grid_{scale}.json` cache had): a
//! segment is only trusted when its header matches the requesting
//! experiment's schema version, id, seed **and** options fingerprint.
//! Change the seed, the budget, the fault plan or the record schema and
//! the segment is discarded instead of silently served.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use mtm_core::{ExperimentResult, PassResult};

use crate::error::RunnerError;
use crate::segment::{self, SegmentWriter};

/// Journal schema version. Bump on any record-shape change; old segments
/// are then re-run rather than misread.
pub const SCHEMA_VERSION: u32 = 1;

/// First line of every segment: what experiment this is and under which
/// exact protocol it ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Header {
    /// Journal schema version ([`SCHEMA_VERSION`]).
    pub version: u32,
    /// Experiment id (e.g. `grid-smoke/small/even/pla`).
    pub exp_id: String,
    /// Base seed of the experiment.
    pub seed: u64,
    /// Fingerprint of everything else that shapes results: budgets,
    /// repetitions, memoization, fault plan (see
    /// [`crate::engine::fingerprint`]). Thread count is deliberately
    /// excluded — parallel and serial runs are interchangeable.
    pub fingerprint: u64,
}

/// One measured (or memo-served) trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// Pass index within the experiment.
    pub pass: usize,
    /// Optimization step within the pass.
    pub step: usize,
    /// Repetition within the step (`measure_reps`).
    pub rep: usize,
    /// Stable hash of the proposed configuration — replay verifies the
    /// re-proposed configuration against this before trusting the value.
    pub config_hash: u64,
    /// The run id the measurement (attempt that succeeded) used.
    pub run_id: u64,
    /// Measured throughput, tuples/s.
    pub throughput: f64,
    /// `true` when served from the memo cache instead of the simulator.
    pub cached: bool,
    /// Measurement attempts consumed (>1 means injected failures were
    /// retried; 0 means memo hit).
    pub attempts: u32,
}

/// One confirmation re-run of the winning configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfirmRecord {
    /// Confirmation index.
    pub rep: usize,
    /// Stable hash of the winning configuration being confirmed — replay
    /// ignores records whose hash no longer matches the current winner.
    pub config_hash: u64,
    /// Run id measured under.
    pub run_id: u64,
    /// Measured throughput, tuples/s.
    pub throughput: f64,
}

/// A completed pass, stored whole so resume can skip re-proposing it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassDone {
    /// Pass index.
    pub pass: usize,
    /// The pass outcome.
    pub result: PassResult,
}

/// Everything a segment can record, externally tagged per line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Record {
    /// Segment header (always the first line).
    Header(Header),
    /// One trial measurement.
    Trial(TrialRecord),
    /// One confirmation measurement.
    Confirm(ConfirmRecord),
    /// A completed optimization pass.
    PassDone(PassDone),
    /// The completed experiment (always the last line of a finished
    /// segment).
    Done(ExperimentResult),
}

/// Parsed view of a segment: the longest valid record prefix, indexed for
/// replay. Later records win on key collisions, so a pass that re-measured
/// after a replay divergence supersedes its stale rows.
#[derive(Debug, Default)]
pub struct SegmentData {
    /// The header, when the first line parsed as one.
    pub header: Option<Header>,
    /// `(pass, step, rep)` → trial.
    pub trials: BTreeMap<(usize, usize, usize), TrialRecord>,
    /// Confirmation index → record.
    pub confirms: BTreeMap<usize, ConfirmRecord>,
    /// Completed passes.
    pub passes: BTreeMap<usize, PassResult>,
    /// The finished experiment, if the segment completed.
    pub done: Option<ExperimentResult>,
    /// Byte length of the valid prefix (append after truncating to this).
    pub valid_len: u64,
}

impl SegmentData {
    /// Number of journaled trial + confirmation measurements.
    pub fn n_records(&self) -> usize {
        self.trials.len() + self.confirms.len()
    }
}

/// Index scanned records into a [`SegmentData`] (later records win on
/// key collisions; the first header wins).
pub fn index_records(records: Vec<Record>, valid_len: u64) -> SegmentData {
    let mut data = SegmentData {
        valid_len,
        ..SegmentData::default()
    };
    for record in records {
        match record {
            Record::Header(h) => {
                if data.header.is_none() {
                    data.header = Some(h);
                }
            }
            Record::Trial(t) => {
                data.trials.insert((t.pass, t.step, t.rep), t);
            }
            Record::Confirm(c) => {
                data.confirms.insert(c.rep, c);
            }
            Record::PassDone(p) => {
                data.passes.insert(p.pass, p.result);
            }
            Record::Done(r) => {
                data.done = Some(r);
            }
        }
    }
    data
}

/// Load and index a segment. `Ok(None)` when the file does not exist;
/// torn or trailing-garbage bytes (including invalid UTF-8 a concurrent
/// writer may be mid-way through flushing) are excluded from `valid_len`
/// rather than reported as errors — loading never requires the writer to
/// be stopped (see [`crate::segment::scan_prefix`]).
pub fn load_segment(path: &Path) -> Result<Option<SegmentData>, RunnerError> {
    let Some((lines, valid_len)) = segment::load_prefix::<Record>(path)? else {
        return Ok(None);
    };
    Ok(Some(index_records(
        lines.into_iter().map(|l| l.record).collect(),
        valid_len,
    )))
}

/// Append-only, internally synchronized record writer over
/// [`crate::segment::SegmentWriter`]. Each `append` writes one full line
/// and flushes, so at most the in-flight record is lost on a crash.
pub struct Journal {
    writer: SegmentWriter,
}

impl Journal {
    /// A journal that discards everything — in-memory execution.
    pub fn null() -> Journal {
        Journal {
            writer: SegmentWriter::null(),
        }
    }

    /// Open `path` for appending after truncating it to `valid_len`
    /// (drops any torn trailing bytes a crash left behind). Creates the
    /// file and its parent directory as needed.
    pub fn open_append(path: &Path, valid_len: u64) -> Result<Journal, RunnerError> {
        Ok(Journal {
            writer: SegmentWriter::open_append(path, valid_len)?,
        })
    }

    // mtm-cold: journal IO runs per measured trial, never inside sim or scoring loops
    /// Append one record (one line) and flush it to the OS.
    pub fn append(&self, record: &Record) -> Result<(), RunnerError> {
        self.writer.append(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mtm-runner-journal-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn trial(pass: usize, step: usize, tp: f64) -> Record {
        Record::Trial(TrialRecord {
            pass,
            step,
            rep: 0,
            config_hash: 0xABCD,
            run_id: 7,
            throughput: tp,
            cached: false,
            attempts: 1,
        })
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let path = tmpfile("roundtrip.jsonl");
        let _ = fs::remove_file(&path);
        let j = Journal::open_append(&path, 0).unwrap();
        j.append(&Record::Header(Header {
            version: SCHEMA_VERSION,
            exp_id: "t".into(),
            seed: 5,
            fingerprint: 99,
        }))
        .unwrap();
        j.append(&trial(0, 0, 100.0)).unwrap();
        j.append(&trial(0, 1, 200.0)).unwrap();
        drop(j);

        let data = load_segment(&path).unwrap().unwrap();
        let h = data.header.unwrap();
        assert_eq!(h.seed, 5);
        assert_eq!(h.fingerprint, 99);
        assert_eq!(data.trials.len(), 2);
        assert_eq!(data.trials[&(0, 1, 0)].throughput, 200.0);
        assert!(data.done.is_none());
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_reappendable() {
        let path = tmpfile("torn.jsonl");
        let _ = fs::remove_file(&path);
        let j = Journal::open_append(&path, 0).unwrap();
        j.append(&trial(0, 0, 100.0)).unwrap();
        j.append(&trial(0, 1, 200.0)).unwrap();
        drop(j);

        // Simulate a crash mid-write: chop the file mid-record.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let data = load_segment(&path).unwrap().unwrap();
        assert_eq!(data.trials.len(), 1, "torn record excluded");
        let valid = data.valid_len;
        assert!(valid < (bytes.len() - 9) as u64);

        // Appending after truncation yields a clean two-record file again.
        let j = Journal::open_append(&path, valid).unwrap();
        j.append(&trial(0, 1, 222.0)).unwrap();
        drop(j);
        let data = load_segment(&path).unwrap().unwrap();
        assert_eq!(data.trials.len(), 2);
        assert_eq!(data.trials[&(0, 1, 0)].throughput, 222.0);
    }

    #[test]
    fn later_records_win_on_collisions() {
        let path = tmpfile("collide.jsonl");
        let _ = fs::remove_file(&path);
        let j = Journal::open_append(&path, 0).unwrap();
        j.append(&trial(0, 0, 1.0)).unwrap();
        j.append(&trial(0, 0, 2.0)).unwrap();
        drop(j);
        let data = load_segment(&path).unwrap().unwrap();
        assert_eq!(data.trials[&(0, 0, 0)].throughput, 2.0);
    }

    #[test]
    fn live_segment_with_partial_utf8_tail_loads() {
        // `mtm-runner status` against a journal a live daemon is
        // appending to: the tail may hold a partially flushed multi-byte
        // character. The loader must serve the valid prefix, not error.
        let path = tmpfile("live-utf8.jsonl");
        let _ = fs::remove_file(&path);
        let j = Journal::open_append(&path, 0).unwrap();
        j.append(&trial(0, 0, 100.0)).unwrap();
        drop(j);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"{\"Trial\":{\"pass\":0,\"step\":1,\"x\xC3"); // torn mid-'Ã©'
        fs::write(&path, &bytes).unwrap();
        let data = load_segment(&path).unwrap().unwrap();
        assert_eq!(data.trials.len(), 1);
        assert!(data.valid_len < bytes.len() as u64);
    }

    #[test]
    fn missing_file_is_none_and_null_sink_swallows() {
        assert!(load_segment(Path::new("/nonexistent/nope.jsonl"))
            .unwrap()
            .is_none());
        let j = Journal::null();
        j.append(&trial(0, 0, 1.0)).unwrap();
    }
}
