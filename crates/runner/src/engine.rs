//! The journaled experiment execution engine.
//!
//! One call to [`run_experiment_journaled`] executes the full §V protocol
//! for one experiment — passes, best-pass selection, confirmation runs —
//! while interposing on every measurement through [`mtm_core::Measure`]:
//!
//! * every trial is **journaled** (appended + flushed before its value is
//!   used), so a crash loses at most one in-flight measurement;
//! * on resume, journaled trials **replay** into a fresh strategy through
//!   the ordinary `propose`/`observe` interface: the strategy re-proposes
//!   (deterministically, from its seed), the proposal's hash is verified
//!   against the journal, and the recorded value is fed back without
//!   touching the simulator — surrogate state is rebuilt, not stored;
//! * repeated configurations within a pass can be **memoized**
//!   (config-hash → measurement) when the caller opts in;
//! * measurements go through the **fault plan**: injected failures are
//!   retried with salted run ids, exhaustion reports zero throughput.
//!
//! Determinism contract: for a fixed ([`RunOptions`], [`RunnerOptions`]
//! minus `threads`), the result is bitwise-identical whether the run is
//! serial, parallel, interrupted-and-resumed, or all three — except the
//! `optimizer_time_s` wall-clock fields, the workspace's one sanctioned
//! nondeterminism (see [`canonical_result_json`]).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use mtm_core::{
    confirm_run_id, pass_seed, run_pass_traced, select_best_pass, ExperimentResult, Measure,
    Objective, PassResult, RunOptions, Strategy, TrialCtx,
};
use mtm_obs::event::finite_or_zero;
use mtm_obs::{Event, MemRecorder, NullRecorder, Recorder};
use mtm_stormsim::StormConfig;
use serde::Serialize;

use crate::error::RunnerError;
use crate::fault::FaultPlan;
use crate::hash::{config_hash, fnv1a64};
use crate::journal::{
    load_segment, ConfirmRecord, Header, Journal, PassDone, Record, SegmentData, TrialRecord,
    SCHEMA_VERSION,
};
use crate::pool;

/// Execution options orthogonal to the protocol's [`RunOptions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerOptions {
    /// Worker threads for independent units (passes, confirmation reps;
    /// grid cells at the layer above). `0` or `1` runs serially. Not part
    /// of the journal fingerprint: thread count never changes results.
    pub threads: usize,
    /// Deduplicate repeated configurations within a pass via the memo
    /// cache. Off by default — the paper re-measures every step, and the
    /// default path stays bitwise-equal to `mtm_core::run_experiment`.
    pub memoize: bool,
    /// Fault injection and retry policy.
    pub faults: FaultPlan,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            threads: 1,
            memoize: false,
            faults: FaultPlan::default(),
        }
    }
}

impl RunnerOptions {
    /// Serial, fault-free, unmemoized — the reference configuration.
    pub fn serial() -> RunnerOptions {
        RunnerOptions::default()
    }

    /// Parallel over `threads` workers, otherwise the reference
    /// configuration.
    pub fn parallel(threads: usize) -> RunnerOptions {
        RunnerOptions {
            threads,
            ..Default::default()
        }
    }
}

/// Counters describing how an experiment's trials were satisfied.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TrialStats {
    /// Simulator measurements actually run.
    pub measured: u64,
    /// Trials served from the memo cache.
    pub cache_hits: u64,
    /// Trials replayed from the journal on resume.
    pub replayed: u64,
    /// Injected measurement failures encountered (each consumed one
    /// attempt).
    pub injected_failures: u64,
    /// Trials that exhausted every attempt and reported zero throughput.
    pub retries_exhausted: u64,
    /// Replay mismatches (journal vs. re-proposed configuration) — 0
    /// unless the code or seed drifted under a live journal.
    pub replay_divergences: u64,
}

impl TrialStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: &TrialStats) {
        self.measured += other.measured;
        self.cache_hits += other.cache_hits;
        self.replayed += other.replayed;
        self.injected_failures += other.injected_failures;
        self.retries_exhausted += other.retries_exhausted;
        self.replay_divergences += other.replay_divergences;
    }

    /// Total trials satisfied by any means.
    pub fn trials(&self) -> u64 {
        self.measured + self.cache_hits + self.replayed
    }
}

/// Outcome of a journaled experiment.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The experiment result (identical to what direct execution
    /// produces).
    pub result: ExperimentResult,
    /// How its trials were satisfied.
    pub stats: TrialStats,
    /// `true` when a valid journal segment contributed records.
    pub resumed: bool,
}

/// Fingerprint of everything besides the seed that shapes an experiment's
/// results. A journal segment whose header fingerprint differs is stale
/// and gets discarded — this is what fixes the old cache's silent
/// staleness (a changed seed, budget, schema or fault plan re-runs
/// instead of serving old numbers).
pub fn fingerprint(exp_id: &str, opts: &RunOptions, ropts: &RunnerOptions) -> u64 {
    let canonical = format!(
        "v{}|{}|seed={}|steps={}|zero={}|confirm={}|passes={}|reps={}|memo={}|frate={}|fseed={}|fretries={}",
        SCHEMA_VERSION,
        exp_id,
        opts.seed,
        opts.max_steps,
        opts.zero_stop,
        opts.confirm_reps,
        opts.passes,
        opts.measure_reps,
        ropts.memoize,
        ropts.faults.fail_rate,
        ropts.faults.seed,
        ropts.faults.max_retries,
    );
    fnv1a64(canonical.as_bytes())
}

/// Serialize a result with the `optimizer_time_s` wall-clock fields
/// zeroed — the canonical byte representation determinism checks compare.
pub fn canonical_result_json(result: &ExperimentResult) -> String {
    let mut r = result.clone();
    for pass in &mut r.passes {
        for step in &mut pass.steps {
            step.optimizer_time_s = 0.0;
        }
    }
    serde_json::to_string(&r).unwrap_or_default()
}

/// Measure `config` under the fault plan: retry injected failures with
/// salted run ids, report zero throughput on exhaustion. Returns
/// `(value, run_id_used, attempts, injected, exhausted)`.
// mtm-allow: wall-clock -- the elapsed time only drives a stderr budget
// warning; the measured value itself comes from the seeded simulator.
fn measure_with_retry(
    objective: &Objective,
    config: &StormConfig,
    base_run_id: u64,
    faults: &FaultPlan,
) -> (f64, u64, u32, u64, bool) {
    let mut injected = 0u64;
    for attempt in 0..=faults.max_retries {
        let run_id = faults.attempt_run_id(base_run_id, attempt);
        if faults.injects_failure(run_id, attempt) {
            injected += 1;
            continue;
        }
        let t0 = Instant::now();
        let value = objective.measure(config, run_id);
        let elapsed = t0.elapsed().as_secs_f64();
        if elapsed > faults.timeout_s {
            eprintln!(
                "[runner] warning: measurement took {elapsed:.1}s (budget {:.1}s)",
                faults.timeout_s
            );
        }
        #[cfg(feature = "strict-invariants")]
        mtm_check::invariants::assert_finite_val("runner: measured throughput", value);
        return (value, run_id, attempt + 1, injected, false);
    }
    (0.0, base_run_id, faults.max_retries + 1, injected, true)
}

/// The journal-aware [`Measure`] implementation for one pass.
struct JournaledMeasure<'a> {
    journal: &'a Journal,
    pass: usize,
    /// `(step, rep)` → journaled trial, consumed by replay.
    replay: BTreeMap<(usize, usize), TrialRecord>,
    memo: BTreeMap<u64, f64>,
    memoize: bool,
    faults: FaultPlan,
    stats: TrialStats,
    /// Session abort flag ([`Measure::poll_abort`]); `None` for batch
    /// execution.
    abort: Option<&'a AtomicBool>,
    /// First journal-append failure; surfaced after the pass (the
    /// `Measure` trait has no error channel, and one lost record is
    /// recoverable — the run is only reported failed, not corrupted).
    io_error: Option<RunnerError>,
}

impl<'a> JournaledMeasure<'a> {
    fn new(
        journal: &'a Journal,
        pass: usize,
        replay: BTreeMap<(usize, usize), TrialRecord>,
        ropts: &RunnerOptions,
        abort: Option<&'a AtomicBool>,
    ) -> Self {
        // Pre-populate the memo with replayed values: an uninterrupted
        // memoized run would hold exactly these entries by the time it
        // reached the first un-journaled step.
        let memo = replay
            .values()
            .map(|t| (t.config_hash, t.throughput))
            .collect();
        JournaledMeasure {
            journal,
            pass,
            replay,
            memo,
            memoize: ropts.memoize,
            faults: ropts.faults,
            stats: TrialStats::default(),
            abort,
            io_error: None,
        }
    }

    // mtm-cold: journal writes happen once per measured trial, behind the cold measure seam
    fn push(&mut self, record: Record) {
        if self.io_error.is_none() {
            if let Err(e) = self.journal.append(&record) {
                self.io_error = Some(e);
            }
        }
    }
}

impl Measure for JournaledMeasure<'_> {
    fn poll_abort(&self) -> bool {
        self.abort.is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    // mtm-cold: one journaled two-minute evaluation run per trial;
    // journal IO and memo inserts are the per-trial cost by design.
    fn measure(&mut self, objective: &Objective, config: &StormConfig, ctx: &TrialCtx) -> f64 {
        let hash = config_hash(config);

        if let Some(rec) = self.replay.get(&(ctx.step, ctx.rep)) {
            if rec.config_hash == hash {
                self.stats.replayed += 1;
                return rec.throughput;
            }
            // The journal no longer matches what the strategy proposes
            // (code or seed drifted under a live journal). Stop trusting
            // it: re-measure from here on; fresh appends supersede the
            // stale rows (the loader is last-wins).
            eprintln!(
                "[runner] replay divergence at pass {} step {} rep {} — re-measuring tail",
                self.pass, ctx.step, ctx.rep
            );
            self.stats.replay_divergences += 1;
            self.replay.clear();
            self.memo.clear();
        }

        if self.memoize {
            if let Some(&value) = self.memo.get(&hash) {
                self.stats.cache_hits += 1;
                self.push(Record::Trial(TrialRecord {
                    pass: self.pass,
                    step: ctx.step,
                    rep: ctx.rep,
                    config_hash: hash,
                    run_id: ctx.run_id(),
                    throughput: value,
                    cached: true,
                    attempts: 0,
                }));
                return value;
            }
        }

        let (value, run_id, attempts, injected, exhausted) =
            measure_with_retry(objective, config, ctx.run_id(), &self.faults);
        self.stats.measured += 1;
        self.stats.injected_failures += injected;
        if exhausted {
            self.stats.retries_exhausted += 1;
            eprintln!(
                "[runner] trial pass {} step {} rep {} failed {} attempts — recording zero",
                self.pass, ctx.step, ctx.rep, attempts
            );
        }
        if self.memoize {
            self.memo.insert(hash, value);
        }
        self.push(Record::Trial(TrialRecord {
            pass: self.pass,
            step: ctx.step,
            rep: ctx.rep,
            config_hash: hash,
            run_id,
            throughput: value,
            cached: false,
            attempts,
        }));
        value
    }
}

/// Execute (or resume) one full experiment under the journal at
/// `segment`. `segment: None` runs purely in memory (no I/O, infallible
/// in practice); `resume: false` discards any existing segment and starts
/// fresh. See the module docs for the determinism contract.
pub fn run_experiment_journaled(
    exp_id: &str,
    make_strategy: &(dyn Fn(u64) -> Strategy + Sync),
    objective: &Objective,
    opts: &RunOptions,
    ropts: &RunnerOptions,
    segment: Option<&Path>,
    resume: bool,
) -> Result<Outcome, RunnerError> {
    run_experiment_traced(
        exp_id,
        make_strategy,
        objective,
        opts,
        ropts,
        segment,
        resume,
        &mut NullRecorder,
    )
}

/// [`run_experiment_journaled`] with instrumentation: per-pass spans
/// ([`Event::PassStart`]/[`Event::PassEnd`]), per-trial events carrying
/// the journal run ids, confirmation runs, and a closing
/// [`Event::ExperimentEnd`] go to `rec`.
///
/// Trace bytes are independent of the thread count: each parallel unit
/// (pass or confirmation rep) records into its own buffer, and the
/// buffers are spliced into `rec` in unit-index order — the same order a
/// serial run would have produced. The experiment result is bitwise
/// identical with any recorder.
#[allow(clippy::too_many_arguments)] // mirrors run_experiment_journaled + rec
pub fn run_experiment_traced<R: Recorder>(
    exp_id: &str,
    make_strategy: &(dyn Fn(u64) -> Strategy + Sync),
    objective: &Objective,
    opts: &RunOptions,
    ropts: &RunnerOptions,
    segment: Option<&Path>,
    resume: bool,
    rec: &mut R,
) -> Result<Outcome, RunnerError> {
    run_experiment_session(
        exp_id,
        make_strategy,
        objective,
        opts,
        ropts,
        segment,
        resume,
        None,
        rec,
    )
}

/// [`run_experiment_traced`] with a **session abort flag** — the entry
/// point `mtm-serve` drives long-lived sessions through. When `abort`
/// flips to `true` the run stops at the next trial boundary and returns
/// [`RunnerError::Canceled`]; journaled trials up to that point stay
/// valid, no `PassDone`/`Done` record is written for interrupted phases,
/// and a later resume completes the experiment bitwise-identically to an
/// uninterrupted run. `abort: None` is exactly batch execution.
#[allow(clippy::too_many_arguments)] // mirrors run_experiment_traced + abort
pub fn run_experiment_session<R: Recorder>(
    exp_id: &str,
    make_strategy: &(dyn Fn(u64) -> Strategy + Sync),
    objective: &Objective,
    opts: &RunOptions,
    ropts: &RunnerOptions,
    segment: Option<&Path>,
    resume: bool,
    abort: Option<&AtomicBool>,
    rec: &mut R,
) -> Result<Outcome, RunnerError> {
    let fp = fingerprint(exp_id, opts, ropts);
    let wallclock = rec.wallclock();

    // Load and validate any existing segment.
    let mut existing: Option<SegmentData> = None;
    if resume {
        if let Some(path) = segment {
            if let Some(data) = load_segment(path)? {
                let trusted = data.header.as_ref().is_some_and(|h| {
                    h.version == SCHEMA_VERSION
                        && h.exp_id == exp_id
                        && h.seed == opts.seed
                        && h.fingerprint == fp
                });
                if trusted {
                    existing = Some(data);
                } else if data.header.is_some() {
                    eprintln!("[runner] {exp_id}: stale journal segment (seed/budget/schema changed) — re-running");
                }
            }
        }
    }
    let resumed = existing.is_some();

    // A finished segment short-circuits the whole experiment.
    if let Some(data) = &existing {
        if let Some(done) = &data.done {
            let stats = TrialStats {
                replayed: data.n_records() as u64,
                ..TrialStats::default()
            };
            if R::ENABLED {
                rec.record(Event::Note {
                    text: format!("{exp_id}: finished journal segment, nothing re-run").into(),
                });
                rec.record(Event::ExperimentEnd {
                    exp_id: exp_id.to_string().into(),
                    best_pass: done.best_pass,
                });
            }
            return Ok(Outcome {
                result: done.clone(),
                stats,
                resumed: true,
            });
        }
    }

    let valid_len = existing.as_ref().map_or(0, |d| d.valid_len);
    let journal = match segment {
        Some(path) => Journal::open_append(path, valid_len)?,
        None => Journal::null(),
    };
    if !resumed {
        journal.append(&Record::Header(Header {
            version: SCHEMA_VERSION,
            exp_id: exp_id.to_string(),
            seed: opts.seed,
            fingerprint: fp,
        }))?;
    }
    let existing = existing.unwrap_or_default();

    // Passes: independent units (fresh strategy + own seed each), fanned
    // across the pool; completed passes come straight from the journal.
    let n_passes = opts.passes.max(1);
    let pass_outcomes = pool::run_indexed(n_passes, ropts.threads, |p| {
        let seed = pass_seed(opts.seed, p);
        // Each unit records into its own buffer; the buffers are spliced
        // into `rec` in pass order below, so trace bytes never depend on
        // worker interleaving.
        let mut unit = MemRecorder::new().with_wallclock(wallclock);
        if R::ENABLED {
            unit.record(Event::PassStart { pass: p, seed });
        }
        if let Some(done) = existing.passes.get(&p) {
            let replayed = existing.trials.keys().filter(|(pp, _, _)| *pp == p).count();
            let stats = TrialStats {
                replayed: replayed as u64,
                ..TrialStats::default()
            };
            if R::ENABLED {
                unit.record(Event::Note {
                    text: format!("pass {p}: replayed from journal").into(),
                });
                unit.record(Event::PassEnd {
                    pass: p,
                    best_step: done.best_step,
                    best_y: finite_or_zero(done.best_throughput),
                });
            }
            return Ok((done.clone(), stats, unit.drain()));
        }
        let mut strategy = make_strategy(seed);
        let replay: BTreeMap<(usize, usize), TrialRecord> = existing
            .trials
            .iter()
            .filter(|((pp, _, _), _)| *pp == p)
            .map(|(&(_, step, rep), rec)| ((step, rep), rec.clone()))
            .collect();
        let mut measure = JournaledMeasure::new(&journal, p, replay, ropts, abort);
        let pass_opts = RunOptions {
            seed,
            ..opts.clone()
        };
        let result = run_pass_traced(
            &mut strategy,
            objective,
            &pass_opts,
            &mut measure,
            &mut unit,
        );
        if let Some(e) = measure.io_error.take() {
            return Err(e);
        }
        // An aborted pass must NOT be marked done: its journaled trials
        // stay valid, and a later resume replays them and finishes the
        // remaining steps bitwise-identically.
        if abort.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            return Err(RunnerError::Canceled);
        }
        journal.append(&Record::PassDone(PassDone {
            pass: p,
            result: result.clone(),
        }))?;
        if R::ENABLED {
            unit.record(Event::PassEnd {
                pass: p,
                best_step: result.best_step,
                best_y: finite_or_zero(result.best_throughput),
            });
        }
        Ok((result, measure.stats, unit.drain()))
    });

    let mut passes: Vec<PassResult> = Vec::with_capacity(n_passes);
    let mut stats = TrialStats::default();
    for outcome in pass_outcomes {
        let (pass, pass_stats, events) = outcome?;
        stats.merge(&pass_stats);
        passes.push(pass);
        for event in events {
            rec.record(event);
        }
    }

    let best_pass = select_best_pass(&passes);
    let best_config = passes[best_pass].best_config.clone();
    let best_hash = config_hash(&best_config);

    // Confirmation runs: independent units keyed by repetition index.
    // Journaled confirms only replay while they confirm the same winner.
    let confirm_outcomes = pool::run_indexed(opts.confirm_reps, ropts.threads, |rep| {
        if abort.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
            return Err(RunnerError::Canceled);
        }
        if let Some(journaled) = existing.confirms.get(&rep) {
            if journaled.config_hash == best_hash {
                let unit_stats = TrialStats {
                    replayed: 1,
                    ..TrialStats::default()
                };
                let confirm_event = Event::Confirm {
                    rep,
                    run_id: journaled.run_id,
                    y: finite_or_zero(journaled.throughput),
                };
                return Ok::<(f64, TrialStats, Event), RunnerError>((
                    journaled.throughput,
                    unit_stats,
                    confirm_event,
                ));
            }
        }
        let base_id = confirm_run_id(opts.seed, rep as u64);
        let (value, run_id, _attempts, injected, exhausted) =
            measure_with_retry(objective, &best_config, base_id, &ropts.faults);
        journal.append(&Record::Confirm(ConfirmRecord {
            rep,
            config_hash: best_hash,
            run_id,
            throughput: value,
        }))?;
        let unit_stats = TrialStats {
            measured: 1,
            injected_failures: injected,
            retries_exhausted: exhausted as u64,
            ..TrialStats::default()
        };
        let confirm_event = Event::Confirm {
            rep,
            run_id,
            y: finite_or_zero(value),
        };
        Ok((value, unit_stats, confirm_event))
    });

    let mut confirmation: Vec<f64> = Vec::with_capacity(opts.confirm_reps);
    for outcome in confirm_outcomes {
        let (value, unit_stats, confirm_event) = outcome?;
        stats.merge(&unit_stats);
        confirmation.push(value);
        if R::ENABLED {
            rec.record(confirm_event);
        }
    }

    let result = ExperimentResult {
        strategy: passes[best_pass].strategy.clone(),
        passes,
        best_pass,
        confirmation,
    };
    if abort.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
        return Err(RunnerError::Canceled);
    }
    journal.append(&Record::Done(result.clone()))?;
    if R::ENABLED {
        rec.record(Event::ExperimentEnd {
            exp_id: exp_id.to_string().into(),
            best_pass,
        });
    }

    Ok(Outcome {
        result,
        stats,
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtm_core::run_experiment;
    use mtm_stormsim::ClusterSpec;
    use mtm_topogen::{make_condition, Condition, SizeClass};

    fn objective() -> Objective {
        let topo = make_condition(
            SizeClass::Small,
            &Condition {
                time_imbalance: 0.0,
                contention: 0.0,
            },
            7,
        );
        let base = mtm_core::objective::synthetic_base(&topo);
        Objective::new(topo, ClusterSpec::paper_cluster()).with_base(base)
    }

    fn opts() -> RunOptions {
        RunOptions {
            max_steps: 6,
            confirm_reps: 3,
            passes: 2,
            seed: 0x77,
            ..Default::default()
        }
    }

    fn bo_factory() -> impl Fn(u64) -> Strategy + Sync {
        let topo = objective().topology().clone();
        move |seed| Strategy::bo(&topo, mtm_core::ParamSet::Hints, seed)
    }

    #[test]
    fn engine_matches_direct_execution_bitwise() {
        let obj = objective();
        let make = bo_factory();
        let direct = run_experiment(&make, &obj, &opts());
        let engine = run_experiment_journaled(
            "test/equiv",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            None,
            false,
        )
        .unwrap();
        assert_eq!(
            canonical_result_json(&direct),
            canonical_result_json(&engine.result),
            "engine must reproduce mtm_core::run_experiment exactly"
        );
        assert_eq!(engine.stats.replayed, 0);
        assert!(engine.stats.measured > 0);
    }

    #[test]
    fn parallel_equals_serial() {
        let obj = objective();
        let make = bo_factory();
        let serial = run_experiment_journaled(
            "test/par",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            None,
            false,
        )
        .unwrap();
        let parallel = run_experiment_journaled(
            "test/par",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::parallel(4),
            None,
            false,
        )
        .unwrap();
        assert_eq!(
            canonical_result_json(&serial.result),
            canonical_result_json(&parallel.result)
        );
    }

    #[test]
    fn memoization_dedups_repeated_configs() {
        let obj = objective();
        // With `measure_reps: 2` every step measures the same
        // configuration twice — the second repetition is a guaranteed
        // memo hit when memoization is on.
        let make = |_seed: u64| Strategy::pla();
        let memo_opts = RunnerOptions {
            memoize: true,
            ..RunnerOptions::serial()
        };
        let run_opts = RunOptions {
            max_steps: 5,
            measure_reps: 2,
            passes: 1,
            ..opts()
        };
        let run =
            run_experiment_journaled("test/memo", &make, &obj, &run_opts, &memo_opts, None, false)
                .unwrap();
        assert_eq!(
            run.stats.cache_hits, 5,
            "one memo hit per step, stats: {:?}",
            run.stats
        );
        // And memoization off re-measures every repetition.
        let run = run_experiment_journaled(
            "test/memo-off",
            &make,
            &obj,
            &run_opts,
            &RunnerOptions::serial(),
            None,
            false,
        )
        .unwrap();
        assert_eq!(run.stats.cache_hits, 0);
        assert_eq!(run.stats.measured, 5 * 2 + 3, "10 step reps + 3 confirms");
    }

    #[test]
    fn injected_failures_are_retried_deterministically() {
        let obj = objective();
        let make = bo_factory();
        let faulty = RunnerOptions {
            faults: FaultPlan::with_rate(0.3),
            ..RunnerOptions::serial()
        };
        let a = run_experiment_journaled("test/fault", &make, &obj, &opts(), &faulty, None, false)
            .unwrap();
        let b = run_experiment_journaled("test/fault", &make, &obj, &opts(), &faulty, None, false)
            .unwrap();
        assert!(a.stats.injected_failures > 0, "stats: {:?}", a.stats);
        assert_eq!(
            canonical_result_json(&a.result),
            canonical_result_json(&b.result),
            "fault injection must be deterministic"
        );
        // And a faulty run differs from the fault-free one only through
        // the salted retry run ids — it still completes.
        assert_eq!(a.result.confirmation.len(), 3);
    }

    #[test]
    fn fingerprint_tracks_options() {
        let o = opts();
        let r = RunnerOptions::serial();
        let base = fingerprint("x", &o, &r);
        assert_eq!(base, fingerprint("x", &o, &r));
        assert_ne!(base, fingerprint("y", &o, &r));
        assert_ne!(
            base,
            fingerprint(
                "x",
                &RunOptions {
                    max_steps: o.max_steps + 1,
                    ..o.clone()
                },
                &r
            )
        );
        assert_ne!(
            base,
            fingerprint("x", &o, &RunnerOptions { memoize: true, ..r })
        );
        // Threads are explicitly NOT fingerprinted.
        assert_eq!(base, fingerprint("x", &o, &RunnerOptions::parallel(8)));
    }

    #[test]
    fn tracing_is_inert_and_thread_invariant() {
        let obj = objective();
        let make = bo_factory();
        let plain = run_experiment_journaled(
            "test/trace",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            None,
            false,
        )
        .unwrap();
        let mut serial_rec = MemRecorder::new();
        let traced = run_experiment_traced(
            "test/trace",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            None,
            false,
            &mut serial_rec,
        )
        .unwrap();
        assert_eq!(
            canonical_result_json(&plain.result),
            canonical_result_json(&traced.result),
            "recording must not perturb the experiment"
        );
        let serial_events = serial_rec.drain();
        assert!(
            matches!(
                serial_events.first(),
                Some(Event::PassStart { pass: 0, .. })
            ),
            "trace opens with the first pass span"
        );
        assert!(matches!(
            serial_events.last(),
            Some(Event::ExperimentEnd { .. })
        ));
        let trials = serial_events
            .iter()
            .filter(|e| matches!(e, Event::Trial { .. }))
            .count();
        assert!(trials > 0, "per-trial spans must be present");
        let confirms = serial_events
            .iter()
            .filter(|e| matches!(e, Event::Confirm { .. }))
            .count();
        assert_eq!(confirms, opts().confirm_reps);

        let mut par_rec = MemRecorder::new();
        let par = run_experiment_traced(
            "test/trace",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::parallel(4),
            None,
            false,
            &mut par_rec,
        )
        .unwrap();
        assert_eq!(
            canonical_result_json(&traced.result),
            canonical_result_json(&par.result)
        );
        assert_eq!(
            serial_events,
            par_rec.drain(),
            "trace events must not depend on the thread count"
        );
    }

    #[test]
    fn identical_runs_write_byte_identical_trace_files() {
        use mtm_obs::JsonlRecorder;
        let dir = std::env::temp_dir().join("mtm-runner-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let path_a = dir.join(format!("bytes-a-{pid}.jsonl"));
        let path_b = dir.join(format!("bytes-b-{pid}.jsonl"));
        let obj = objective();
        let make = bo_factory();
        for (path, ropts) in [
            (&path_a, RunnerOptions::serial()),
            (&path_b, RunnerOptions::parallel(4)),
        ] {
            let mut rec = JsonlRecorder::create(path, "test/bytes", opts().seed).unwrap();
            run_experiment_traced(
                "test/bytes",
                &make,
                &obj,
                &opts(),
                &ropts,
                None,
                false,
                &mut rec,
            )
            .unwrap();
            rec.finish().unwrap();
        }
        let a = std::fs::read(&path_a).unwrap();
        let b = std::fs::read(&path_b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "serial and parallel traces must be byte-identical");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn trace_file_torn_tail_survives_truncation_and_resume() {
        use mtm_obs::{load_trace, JsonlRecorder};
        let dir = std::env::temp_dir().join("mtm-runner-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let pid = std::process::id();
        let trace_path = dir.join(format!("torn-{pid}.jsonl"));
        let seg_path = dir.join(format!("torn-seg-{pid}.jsonl"));
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&seg_path);
        let obj = objective();
        let make = bo_factory();

        let mut rec = JsonlRecorder::create(&trace_path, "test/torn", opts().seed).unwrap();
        run_experiment_traced(
            "test/torn",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            Some(&seg_path),
            false,
            &mut rec,
        )
        .unwrap();
        rec.finish().unwrap();
        let full = load_trace(&trace_path).unwrap().unwrap();
        assert!(matches!(
            full.events.last(),
            Some(Event::ExperimentEnd { .. })
        ));

        // Tear the tail mid-record, the way a kill -9 would.
        let bytes = std::fs::read(&trace_path).unwrap();
        std::fs::write(&trace_path, &bytes[..bytes.len() - 17]).unwrap();
        let torn = load_trace(&trace_path).unwrap().unwrap();
        assert!(torn.events.len() < full.events.len());
        assert_eq!(torn.header, full.header, "header survives the tear");
        assert_eq!(
            torn.events[..],
            full.events[..torn.events.len()],
            "the longest valid prefix is exactly the untorn events"
        );

        // Resume appends after the valid prefix; the finished journal
        // short-circuits, so the tail is a replay marker + experiment end.
        let mut rec = JsonlRecorder::append_after(&trace_path, torn.valid_len).unwrap();
        run_experiment_traced(
            "test/torn",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            Some(&seg_path),
            true,
            &mut rec,
        )
        .unwrap();
        rec.finish().unwrap();
        let resumed = load_trace(&trace_path).unwrap().unwrap();
        assert_eq!(resumed.header, full.header);
        assert_eq!(resumed.events[..torn.events.len()], torn.events[..]);
        assert!(matches!(
            resumed.events.last(),
            Some(Event::ExperimentEnd { .. })
        ));
        let _ = std::fs::remove_file(&trace_path);
        let _ = std::fs::remove_file(&seg_path);
    }

    #[test]
    fn cancel_then_resume_is_bitwise_identical_to_uninterrupted() {
        use mtm_obs::NullRecorder;
        let dir = std::env::temp_dir().join("mtm-runner-cancel-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let seg = dir.join(format!("cancel-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&seg);
        let obj = objective();

        // Baseline: the uninterrupted run.
        let make = bo_factory();
        let full = run_experiment_journaled(
            "test/cancel",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            None,
            false,
        )
        .unwrap();

        // A strategy factory that flips the abort flag when pass 1 starts:
        // pass 0 completes and is journaled, pass 1 cancels at its first
        // trial boundary. Deterministic — no timing involved. The flag
        // lives in a static so the closure stays `Fn + Sync` without
        // capturing a non-`'static` reference.
        fn abort_flag() -> &'static AtomicBool {
            static FLAG: AtomicBool = AtomicBool::new(false);
            &FLAG
        }
        let pass1_seed = pass_seed(opts().seed, 1);
        let inner = bo_factory();
        let make_canceling = move |seed: u64| {
            if seed == pass1_seed {
                abort_flag().store(true, Ordering::Relaxed);
            }
            inner(seed)
        };
        abort_flag().store(false, Ordering::Relaxed);

        let err = run_experiment_session(
            "test/cancel",
            &make_canceling,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            Some(&seg),
            false,
            Some(abort_flag()),
            &mut NullRecorder,
        )
        .unwrap_err();
        assert_eq!(err, RunnerError::Canceled);
        let data = load_segment(&seg).unwrap().unwrap();
        assert!(data.done.is_none(), "canceled run must not journal Done");
        assert!(
            data.passes.contains_key(&0) && !data.passes.contains_key(&1),
            "pass 0 finished, the aborted pass 1 must not be marked done"
        );

        // Resume with the abort flag cleared: replays pass 0, runs pass 1
        // fresh, and lands bitwise on the uninterrupted result.
        abort_flag().store(false, Ordering::Relaxed);
        let make = bo_factory();
        let resumed = run_experiment_session(
            "test/cancel",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            Some(&seg),
            true,
            Some(abort_flag()),
            &mut NullRecorder,
        )
        .unwrap();
        assert!(resumed.resumed);
        assert_eq!(
            canonical_result_json(&full.result),
            canonical_result_json(&resumed.result),
            "cancel + resume must reproduce the uninterrupted run exactly"
        );
        let _ = std::fs::remove_file(&seg);
    }
}
