//! Reusable journal-segment machinery.
//!
//! Extracted from [`crate::journal`] so other subsystems (notably
//! `mtm-serve`'s per-session store) can reuse the torn-tail discipline
//! instead of copy-pasting it: a segment is a JSONL file appended one
//! flushed line at a time, and a reader trusts exactly the **longest
//! valid prefix** — everything up to the first incomplete, non-UTF-8 or
//! unparsable line.
//!
//! Three pieces live here:
//!
//! * [`scan_prefix`] — the byte-level prefix scan. It works on raw bytes
//!   (not `read_to_string`) so a *live* segment that another process is
//!   appending to right now can be read safely: a torn trailing line —
//!   even one cut mid-way through a multi-byte UTF-8 character — is
//!   excluded from the valid prefix instead of failing the whole read.
//!   This is what lets `mtm-runner status` and `mtm-serve poll` inspect
//!   journals without stopping the writer.
//! * [`SegmentWriter`] — the append-only line writer: open-or-create,
//!   truncate to a caller-provided valid length (dropping torn bytes a
//!   crash left behind), then append one serialized record + newline +
//!   flush per call.
//! * [`rewrite_atomic`] — segment rotation for compaction: write the
//!   replacement contents to a sibling temp file and `rename` it over
//!   the original, so a crash mid-rotation leaves either the old or the
//!   new segment, never a mix.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::error::RunnerError;

/// One complete, parseable line of a segment's valid prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedLine<T> {
    /// The parsed record.
    pub record: T,
    /// Byte offset of the end of this line (including its newline) —
    /// i.e. the valid length if the prefix stopped here.
    pub end: u64,
}

/// Parse the longest valid prefix of `bytes` as JSONL records of type
/// `T`. Returns the parsed records and the byte length of the valid
/// prefix (truncate-and-append after it). The scan stops — without
/// erroring — at the first line that is incomplete (no trailing
/// newline), not valid UTF-8, or not a parseable `T`: all three are
/// indistinguishable from a crash- or concurrency-torn tail.
pub fn scan_prefix<T: Deserialize>(bytes: &[u8]) -> (Vec<ScannedLine<T>>, u64) {
    let mut out = Vec::new();
    let mut offset = 0usize;
    for line in bytes.split_inclusive(|&b| b == b'\n') {
        let complete = line.last() == Some(&b'\n');
        if !complete {
            // A record without its newline may still be mid-write.
            break;
        }
        let Ok(text) = std::str::from_utf8(line) else {
            break; // torn multi-byte character or foreign bytes
        };
        let body = text.trim_end();
        if body.is_empty() {
            offset += line.len();
            continue;
        }
        let Ok(record) = serde_json::from_str::<T>(body) else {
            break; // torn write or foreign bytes: stop at the valid prefix
        };
        offset += line.len();
        out.push(ScannedLine {
            record,
            end: offset as u64,
        });
    }
    (out, offset as u64)
}

/// Read a segment file as raw bytes. `Ok(None)` when it does not exist.
/// Reading bytes (not UTF-8 text) is deliberate: the file may be mid-
/// append by a live writer, and a partially flushed multi-byte character
/// must read as a torn tail, not an error.
pub fn read_bytes(path: &Path) -> Result<Option<Vec<u8>>, RunnerError> {
    match fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(RunnerError::Io(format!("read {}: {e}", path.display()))),
    }
}

/// A scanned prefix: the decoded records and the byte length of the
/// longest valid prefix they cover.
pub type ScannedPrefix<T> = (Vec<ScannedLine<T>>, u64);

/// Load the longest valid prefix of the segment at `path` as records of
/// type `T`. `Ok(None)` when the file does not exist. Never requires the
/// writer to be stopped.
pub fn load_prefix<T: Deserialize>(path: &Path) -> Result<Option<ScannedPrefix<T>>, RunnerError> {
    match read_bytes(path)? {
        None => Ok(None),
        Some(bytes) => Ok(Some(scan_prefix(&bytes))),
    }
}

enum Sink {
    File(Mutex<File>),
    Null,
}

/// Append-only, internally synchronized JSONL line writer. Each
/// [`append`](SegmentWriter::append) serializes one record, writes one
/// full line and flushes, so at most the in-flight record is lost on a
/// crash.
pub struct SegmentWriter {
    sink: Sink,
}

impl SegmentWriter {
    /// A writer that discards everything — in-memory execution.
    pub fn null() -> SegmentWriter {
        SegmentWriter { sink: Sink::Null }
    }

    /// Open `path` for appending after truncating it to `valid_len`
    /// (drops any torn trailing bytes a crash left behind). Creates the
    /// file and its parent directory as needed.
    pub fn open_append(path: &Path, valid_len: u64) -> Result<SegmentWriter, RunnerError> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| RunnerError::Io(format!("mkdir {}: {e}", parent.display())))?;
        }
        // Never truncate on open: the explicit `set_len(valid_len)` below
        // is the only truncation — it keeps the journaled valid prefix.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(|e| RunnerError::Io(format!("open {}: {e}", path.display())))?;
        file.set_len(valid_len)
            .map_err(|e| RunnerError::Io(format!("truncate {}: {e}", path.display())))?;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| RunnerError::Io(format!("seek {}: {e}", path.display())))?;
        Ok(SegmentWriter {
            sink: Sink::File(Mutex::new(file)),
        })
    }

    // mtm-cold: segment IO runs per journaled record, never inside sim
    // or scoring loops
    /// Append one record (one line) and flush it to the OS.
    pub fn append<T: Serialize>(&self, record: &T) -> Result<(), RunnerError> {
        let Sink::File(file) = &self.sink else {
            return Ok(());
        };
        let json = serde_json::to_string(record)
            .map_err(|e| RunnerError::Io(format!("serialize record: {e}")))?;
        // mtm-allow: lock -- the file mutex exists to serialize this write+flush; it is held for nothing else and never while another lock is held
        let mut guard = match file.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard
            .write_all(json.as_bytes())
            .and_then(|()| guard.write_all(b"\n"))
            .and_then(|()| guard.flush())
            .map_err(|e| RunnerError::Io(format!("append: {e}")))
    }

    /// Append a sequence of records, stopping at the first failure.
    pub fn append_all<T: Serialize>(&self, records: &[T]) -> Result<(), RunnerError> {
        for record in records {
            self.append(record)?;
        }
        Ok(())
    }
}

/// Replace the segment at `path` with `contents` atomically: write a
/// sibling `.rotate` temp file, flush it, and `rename` it over the
/// original. A crash mid-rotation leaves either the complete old file or
/// the complete new one. This is the rotation primitive compaction is
/// built on; callers must ensure no live writer holds the segment open.
pub fn rewrite_atomic(path: &Path, contents: &[u8]) -> Result<(), RunnerError> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)
            .map_err(|e| RunnerError::Io(format!("mkdir {}: {e}", parent.display())))?;
    }
    let tmp: PathBuf = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".rotate");
            path.with_file_name(n)
        }
        None => return Err(RunnerError::Io(format!("bad path {}", path.display()))),
    };
    let mut file = File::create(&tmp)
        .map_err(|e| RunnerError::Io(format!("create {}: {e}", tmp.display())))?;
    file.write_all(contents)
        .and_then(|()| file.flush())
        .and_then(|()| file.sync_all())
        .map_err(|e| RunnerError::Io(format!("write {}: {e}", tmp.display())))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| {
        RunnerError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// Serialize records to the canonical segment byte representation (one
/// JSON line per record) — the payload [`rewrite_atomic`] rotates in.
pub fn render_lines<T: Serialize>(records: &[T]) -> Result<Vec<u8>, RunnerError> {
    let mut out = Vec::new();
    for record in records {
        let json = serde_json::to_string(record)
            .map_err(|e| RunnerError::Io(format!("serialize record: {e}")))?;
        out.extend_from_slice(json.as_bytes());
        out.push(b'\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Row {
        k: u64,
        label: String,
    }

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mtm-runner-segment-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{}", std::process::id(), name))
    }

    #[test]
    fn scan_parses_complete_lines_only() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"{\"k\":1,\"label\":\"a\"}\n");
        bytes.extend_from_slice(b"{\"k\":2,\"label\":\"b\"}\n");
        bytes.extend_from_slice(b"{\"k\":3,\"lab"); // torn mid-write
        let (rows, valid) = scan_prefix::<Row>(&bytes);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].record.k, 2);
        assert_eq!(valid, rows[1].end);
        assert!(valid < bytes.len() as u64);
    }

    #[test]
    fn scan_tolerates_torn_multibyte_utf8() {
        // A writer killed mid-way through a multi-byte character leaves
        // invalid UTF-8; the scan must treat it as a torn tail, not an
        // error (this is what a read-while-appending can observe).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"{\"k\":7,\"label\":\"ok\"}\n");
        bytes.extend_from_slice(b"{\"k\":8,\"label\":\"\xE2\x82"); // half a '€'
        let (rows, valid) = scan_prefix::<Row>(&bytes);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].record.k, 7);
        assert_eq!(valid, 21);
    }

    #[test]
    fn scan_stops_at_foreign_complete_line() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"{\"k\":1,\"label\":\"a\"}\n");
        bytes.extend_from_slice(b"not json at all\n");
        bytes.extend_from_slice(b"{\"k\":2,\"label\":\"b\"}\n");
        let (rows, valid) = scan_prefix::<Row>(&bytes);
        assert_eq!(rows.len(), 1, "prefix ends at the first bad line");
        assert_eq!(valid, rows[0].end);
    }

    #[test]
    fn writer_roundtrip_and_truncation() {
        let path = tmpfile("writer.jsonl");
        let _ = fs::remove_file(&path);
        let w = SegmentWriter::open_append(&path, 0).unwrap();
        w.append(&Row {
            k: 1,
            label: "x".into(),
        })
        .unwrap();
        w.append(&Row {
            k: 2,
            label: "y".into(),
        })
        .unwrap();
        drop(w);
        let (rows, valid) = load_prefix::<Row>(&path).unwrap().unwrap();
        assert_eq!(rows.len(), 2);

        // Chop mid-record; reopen at the valid prefix and append anew.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (rows, torn_valid) = load_prefix::<Row>(&path).unwrap().unwrap();
        assert_eq!(rows.len(), 1);
        assert!(torn_valid < valid);
        let w = SegmentWriter::open_append(&path, torn_valid).unwrap();
        w.append(&Row {
            k: 9,
            label: "z".into(),
        })
        .unwrap();
        drop(w);
        let (rows, _) = load_prefix::<Row>(&path).unwrap().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].record.k, 9);
    }

    #[test]
    fn read_while_writer_holds_the_file_open() {
        // The reader must not require the writer to be stopped: load the
        // prefix while a writer still holds the file open mid-append.
        let path = tmpfile("live.jsonl");
        let _ = fs::remove_file(&path);
        let w = SegmentWriter::open_append(&path, 0).unwrap();
        w.append(&Row {
            k: 1,
            label: "live".into(),
        })
        .unwrap();
        // Simulate a partially flushed next record (writer still alive).
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"k\":2,\"la").unwrap();
            f.flush().unwrap();
        }
        let (rows, valid) = load_prefix::<Row>(&path).unwrap().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].record.label, "live");
        assert_eq!(valid, rows[0].end);
        drop(w);
    }

    #[test]
    fn rewrite_atomic_replaces_contents() {
        let path = tmpfile("rotate.jsonl");
        let _ = fs::remove_file(&path);
        let w = SegmentWriter::open_append(&path, 0).unwrap();
        for k in 0..10 {
            w.append(&Row {
                k,
                label: "old".into(),
            })
            .unwrap();
        }
        drop(w);
        let replacement = render_lines(&[Row {
            k: 99,
            label: "new".into(),
        }])
        .unwrap();
        rewrite_atomic(&path, &replacement).unwrap();
        let (rows, _) = load_prefix::<Row>(&path).unwrap().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].record.k, 99);
        // No temp file left behind.
        let mut tmp_name = path.file_name().unwrap().to_os_string();
        tmp_name.push(".rotate");
        assert!(!path.with_file_name(tmp_name).exists());
    }

    #[test]
    fn missing_file_and_null_sink() {
        assert!(load_prefix::<Row>(Path::new("/nonexistent/nope.jsonl"))
            .unwrap()
            .is_none());
        let w = SegmentWriter::null();
        w.append(&Row {
            k: 0,
            label: String::new(),
        })
        .unwrap();
    }
}
