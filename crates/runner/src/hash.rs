//! Stable hashing and deterministic seed derivation.
//!
//! Everything the runner keys on — journal fingerprints, configuration
//! identity, fault-injection draws — must be stable across processes,
//! platforms and thread schedules. `std`'s `DefaultHasher` is explicitly
//! not guaranteed stable, so the runner uses FNV-1a over canonical JSON
//! for identity and splitmix64 for derived pseudo-random draws.

use mtm_stormsim::StormConfig;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes` — stable across platforms and runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable identity of a configuration: FNV-1a over its canonical JSON
/// serialization (struct field order is fixed, floats print
/// shortest-round-trip, so equal configs hash equal and any field change
/// changes the hash). Serialization of a plain config cannot fail; the
/// zero hash is reserved for that unreachable branch.
pub fn config_hash(config: &StormConfig) -> u64 {
    match serde_json::to_string(config) {
        Ok(json) => fnv1a64(json.as_bytes()),
        Err(_) => 0,
    }
}

/// splitmix64 — the finalizer used for deterministic derived draws
/// (fault-injection decisions, retry run-id salts).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit draw to the unit interval `[0, 1)`.
pub fn unit_f64(x: u64) -> f64 {
    // 53 high bits → uniform double, the standard conversion.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        let a = fnv1a64(b"hello");
        assert_eq!(a, fnv1a64(b"hello"), "same input, same hash");
        assert_ne!(a, fnv1a64(b"hellp"));
        // Pinned value: the well-known FNV-1a test vector for the empty
        // string is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn config_hash_tracks_every_field() {
        let base = StormConfig::baseline(4);
        let h0 = config_hash(&base);
        assert_eq!(h0, config_hash(&base.clone()));

        let mut c = base.clone();
        c.batch_size += 1;
        assert_ne!(h0, config_hash(&c));

        let mut c = base.clone();
        c.parallelism_hints[2] += 1;
        assert_ne!(h0, config_hash(&c));
    }

    #[test]
    fn unit_draws_are_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u), "draw {u} out of range");
        }
    }
}
