//! Kill–resume determinism: interrupting a journaled run (simulated by
//! truncating its segment at an arbitrary byte offset) and resuming must
//! produce a final `ExperimentResult` bitwise-identical to an
//! uninterrupted run — the acceptance test of the runner subsystem.

use std::fs;
use std::path::{Path, PathBuf};

use mtm_core::objective::synthetic_base;
use mtm_core::{Objective, ParamSet, RunOptions, Strategy};
use mtm_runner::engine::{canonical_result_json, run_experiment_journaled};
use mtm_runner::grid;
use mtm_runner::progress::Progress;
use mtm_runner::{RunnerOptions, Scale};
use mtm_stormsim::ClusterSpec;
use mtm_topogen::{make_condition, Condition, SizeClass};

/// Fresh scratch directory under the system temp dir, wiped on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("mtm-runner-resume-tests")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn objective() -> Objective {
    let topo = make_condition(
        SizeClass::Medium,
        &Condition {
            time_imbalance: 0.5,
            contention: 0.0,
        },
        11,
    );
    let base = synthetic_base(&topo);
    Objective::new(topo, ClusterSpec::paper_cluster()).with_base(base)
}

fn opts() -> RunOptions {
    RunOptions {
        max_steps: 8,
        confirm_reps: 3,
        passes: 2,
        seed: 0x51,
        ..Default::default()
    }
}

fn bo_factory() -> impl Fn(u64) -> Strategy + Sync {
    let topo = objective().topology().clone();
    move |seed| Strategy::bo(&topo, ParamSet::Hints, seed)
}

/// Complete a journaled run at `segment`, then truncate the segment to
/// `frac` of its bytes — the moral equivalent of `kill -9` at that point
/// in the run (possibly mid-line; the loader tolerates torn tails).
fn run_then_truncate(segment: &Path, frac: f64) -> String {
    run_then_truncate_with(segment, frac, &bo_factory())
}

/// [`run_then_truncate`] with a caller-chosen strategy factory.
fn run_then_truncate_with(
    segment: &Path,
    frac: f64,
    make: &(impl Fn(u64) -> Strategy + Sync),
) -> String {
    let obj = objective();
    let full = run_experiment_journaled(
        "resume/kill",
        make,
        &obj,
        &opts(),
        &RunnerOptions::serial(),
        Some(segment),
        false,
    )
    .unwrap();
    let bytes = fs::read(segment).unwrap();
    let cut = ((bytes.len() as f64) * frac) as usize;
    fs::write(segment, &bytes[..cut]).unwrap();
    canonical_result_json(&full.result)
}

#[test]
fn truncated_journal_resumes_to_bitwise_identical_result() {
    let dir = scratch("experiment");
    let obj = objective();
    let make = bo_factory();

    // Cut points covering a torn header tail, mid-pass-1, mid-pass-2 and
    // mid-confirmation interruptions.
    for (i, frac) in [0.02, 0.35, 0.6, 0.93].iter().enumerate() {
        let segment = dir.join(format!("kill-{i}.jsonl"));
        let reference = run_then_truncate(&segment, *frac);
        let resumed = run_experiment_journaled(
            "resume/kill",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            Some(&segment),
            true,
        )
        .unwrap();
        assert_eq!(
            reference,
            canonical_result_json(&resumed.result),
            "resume after truncation to {frac} of the journal must match"
        );
        // A cut past the header leaves journaled work to replay.
        if *frac > 0.1 {
            assert!(resumed.resumed, "cut at {frac}: segment should be trusted");
            assert!(
                resumed.stats.replayed > 0,
                "cut at {frac}: expected replayed trials, stats: {:?}",
                resumed.stats
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Kill→resume determinism for one zoo strategy: truncate at `fracs`
/// (chosen per strategy to land in its interesting phases) and require
/// bitwise-identical resumed results.
fn zoo_strategy_resumes_bitwise(name: &str, make: impl Fn(u64) -> Strategy + Sync, fracs: &[f64]) {
    let dir = scratch(name);
    let obj = objective();
    for (i, frac) in fracs.iter().enumerate() {
        let segment = dir.join(format!("kill-{i}.jsonl"));
        let reference = run_then_truncate_with(&segment, *frac, &make);
        let resumed = run_experiment_journaled(
            "resume/kill",
            &make,
            &obj,
            &opts(),
            &RunnerOptions::serial(),
            Some(&segment),
            true,
        )
        .unwrap();
        assert_eq!(
            reference,
            canonical_result_json(&resumed.result),
            "{name}: resume after truncation to {frac} must match"
        );
        if *frac > 0.1 {
            assert!(
                resumed.stats.replayed > 0,
                "{name} cut at {frac}: expected replayed trials, stats: {:?}",
                resumed.stats
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tpe_resumes_bitwise_identical_including_mid_startup() {
    let topo = objective().topology().clone();
    // With max_steps 8 and the default 6-trial startup phase, the 0.2 cut
    // lands inside the random-startup trials and 0.75 inside the
    // density-ratio phase.
    zoo_strategy_resumes_bitwise(
        "tpe",
        move |seed| Strategy::tpe(&topo, ParamSet::Hints, seed),
        &[0.2, 0.45, 0.75],
    );
}

#[test]
fn hyperband_resumes_bitwise_identical_including_mid_rung() {
    let topo = objective().topology().clone();
    // Max_steps 8 spans bracket s=1 (3-member rung 0, then the 3-rep
    // promotion rung) and into bracket s=0, so the cuts land mid-rung
    // and mid-promotion.
    zoo_strategy_resumes_bitwise(
        "hyperband",
        move |seed| Strategy::hyperband(&topo, ParamSet::Hints, seed),
        &[0.3, 0.6, 0.9],
    );
}

#[test]
fn random_resumes_bitwise_identical() {
    let topo = objective().topology().clone();
    zoo_strategy_resumes_bitwise(
        "random",
        move |seed| Strategy::random(&topo, ParamSet::Hints, seed),
        &[0.5],
    );
}

#[test]
fn resume_of_a_finished_segment_is_pure_replay() {
    let dir = scratch("finished");
    let segment = dir.join("done.jsonl");
    let obj = objective();
    let make = bo_factory();
    let ropts = RunnerOptions::serial();
    let full = run_experiment_journaled(
        "resume/done",
        &make,
        &obj,
        &opts(),
        &ropts,
        Some(&segment),
        false,
    )
    .unwrap();
    let again = run_experiment_journaled(
        "resume/done",
        &make,
        &obj,
        &opts(),
        &ropts,
        Some(&segment),
        true,
    )
    .unwrap();
    assert!(again.resumed);
    assert_eq!(again.stats.measured, 0, "nothing should be re-simulated");
    assert_eq!(
        canonical_result_json(&full.result),
        canonical_result_json(&again.result)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stale_segment_is_discarded_not_served() {
    let dir = scratch("stale");
    let segment = dir.join("stale.jsonl");
    let obj = objective();
    let make = bo_factory();
    let ropts = RunnerOptions::serial();
    run_experiment_journaled(
        "resume/stale",
        &make,
        &obj,
        &opts(),
        &ropts,
        Some(&segment),
        false,
    )
    .unwrap();

    // Same id, different seed: the old cache's staleness bug would have
    // served the seed-0x51 numbers here. The journal must re-run instead.
    let changed = RunOptions {
        seed: 0x52,
        ..opts()
    };
    let reference =
        run_experiment_journaled("resume/stale", &make, &obj, &changed, &ropts, None, false)
            .unwrap();
    let resumed = run_experiment_journaled(
        "resume/stale",
        &make,
        &obj,
        &changed,
        &ropts,
        Some(&segment),
        true,
    )
    .unwrap();
    assert!(!resumed.resumed, "stale segment must not be trusted");
    assert_eq!(resumed.stats.replayed, 0);
    assert_eq!(
        canonical_result_json(&reference.result),
        canonical_result_json(&resumed.result),
        "re-run under the new seed, not the journaled old one"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_smoke_grid_resumes_bitwise_identical_to_serial() {
    let dir = scratch("grid");
    let ropts = RunnerOptions::serial();

    // Reference: uninterrupted in-memory serial run.
    let reference = grid::run(Scale::Smoke, &ropts);

    // Journaled run to completion, then simulate a crash that caught the
    // grid mid-flight: one segment truncated mid-pass, one deleted
    // entirely, the rest left complete.
    let (_, _) =
        grid::run_journaled(Scale::Smoke, &ropts, &dir, false, &Progress::quiet()).unwrap();
    let coords = grid::cells();
    let victim_partial = grid::segment_path(&dir, Scale::Smoke, &coords[7]);
    let bytes = fs::read(&victim_partial).unwrap();
    fs::write(&victim_partial, &bytes[..bytes.len() / 2]).unwrap();
    let victim_gone = grid::segment_path(&dir, Scale::Smoke, &coords[23]);
    fs::remove_file(&victim_gone).unwrap();

    let (resumed, report) =
        grid::run_journaled(Scale::Smoke, &ropts, &dir, true, &Progress::quiet()).unwrap();
    assert_eq!(report.cells, 96);
    assert!(
        report.cells_resumed >= 94,
        "complete + truncated cells resume, report: {report:?}"
    );
    assert!(report.stats.measured > 0, "deleted cell re-runs");

    assert_eq!(reference.cells.len(), resumed.cells.len());
    for (a, b) in reference.cells.iter().zip(resumed.cells.iter()) {
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(
            canonical_result_json(&a.result),
            canonical_result_json(&b.result),
            "cell {}/{}/{} diverged after resume",
            a.size.label(),
            grid::condition_slug(&a.condition),
            a.strategy
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
