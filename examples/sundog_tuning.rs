//! Reproduce the paper's Sundog story (Fig. 8) in miniature: tuning
//! parallelism alone is a dead end; opening up batch size and batch
//! parallelism buys a multiple.
//!
//! ```text
//! cargo run --release --example sundog_tuning
//! ```

use mtm::prelude::*;
use mtm::stats::welch_t_test;
use mtm::topogen::sundog_topology;

fn main() {
    // Sundog with its development-time defaults (batch size 50k,
    // batch parallelism 5 — "the values used when Sundog was developed
    // and manually tuned").
    let topo = sundog_topology();
    let mut base = StormConfig::baseline(topo.n_nodes());
    base.batch_size = 50_000;
    base.batch_parallelism = 5;
    let objective = Objective::new(topo, ClusterSpec::paper_cluster()).with_base(base);

    let opts = RunOptions {
        max_steps: 40,
        confirm_reps: 15,
        ..Default::default()
    };

    // Surface 1: parallelism hints only.
    let h_only = mtm::core::run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::Hints, seed),
        &objective,
        &opts,
    );

    // Surface 2: hints + batch size + batch parallelism.
    let h_bs_bp = mtm::core::run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::HintsBatch, seed),
        &objective,
        &opts,
    );

    // Surface 3: batch + concurrency parameters, hints pinned to 11
    // (the paper pinned pla's best).
    let bs_bp_cc = mtm::core::run_experiment(
        |seed| {
            Strategy::bo(
                objective.topology(),
                ParamSet::BatchConcurrency { fixed_hint: 11 },
                seed,
            )
        },
        &objective,
        &opts,
    );

    println!("Sundog, 40 BO steps per surface:\n");
    for (label, r) in [
        ("h", &h_only),
        ("h bs bp", &h_bs_bp),
        ("bs bp cc", &bs_bp_cc),
    ] {
        println!("  {label:<9} {:>9.0} tuples/s (confirmed mean)", r.mean());
    }

    let gain = h_bs_bp.mean() / h_only.mean().max(1e-9);
    println!("\nbatch tuning gain over hints-only: {gain:.2}x (paper: 2.8x)");

    let winner = h_bs_bp.winner();
    println!(
        "winning batch settings: size {}, parallelism {} (paper found 265312 / 16)",
        winner.best_config.batch_size, winner.best_config.batch_parallelism
    );

    if let Some(t) = welch_t_test(&bs_bp_cc.confirmation, &h_bs_bp.confirmation) {
        println!(
            "bs-bp-cc vs h-bs-bp: p = {:.3} -> {} at p=0.05 (paper: not significant)",
            t.p_value,
            if t.significant_at(0.05) {
                "significant"
            } else {
                "not significant"
            }
        );
    }
}
