//! A single cell of the paper's Fig. 4 grid, end to end: generate a
//! medium layer-by-layer topology with 25% contentious operators, then
//! race all four strategies.
//!
//! ```text
//! cargo run --release --example synthetic_sweep
//! ```

use mtm::core::objective::synthetic_base;
use mtm::prelude::*;
use mtm::topogen::{condition_name, make_condition, Condition, SizeClass, TopologyStats};

fn main() {
    let condition = Condition {
        time_imbalance: 0.0,
        contention: 0.25,
    };
    let topo = make_condition(SizeClass::Medium, &condition, 0x2015);

    let stats = TopologyStats::of(&topo);
    println!("topology: {} ({})", stats.name, condition_name(&condition));
    println!("{}", TopologyStats::table_header());
    println!("{}", stats.table_row("medium"));
    println!(
        "contentious compute: {:.0}% of {} units\n",
        topo.contentious_compute_units() / topo.total_compute_units() * 100.0,
        topo.total_compute_units(),
    );

    let base = synthetic_base(&topo);
    let objective = Objective::new(topo, ClusterSpec::paper_cluster()).with_base(base);
    let opts = RunOptions {
        max_steps: 40,
        confirm_reps: 10,
        ..Default::default()
    };

    println!("strategy   mean tuples/s   min..max          steps-to-best");
    for name in ["pla", "ipla", "bo", "ibo"] {
        let result = mtm::core::run_experiment(
            |seed| match name {
                "pla" => Strategy::pla(),
                "ipla" => Strategy::ipla(objective.topology()),
                "bo" => Strategy::bo(objective.topology(), ParamSet::Hints, seed),
                _ => Strategy::ibo(objective.topology(), seed),
            },
            &objective,
            &opts,
        );
        let (min, max) = result.min_max();
        let (cmin, cavg, cmax) = result.convergence_steps();
        println!(
            "{name:<10} {:>13.0}   {:>7.0}..{:<7.0}   {cmin}/{cavg:.0}/{cmax}",
            result.mean(),
            min,
            max
        );
    }
    println!(
        "\nUnder resource contention the paper found BO 'can help increase \
         performance substantially' (Fig. 4, top-right) — the linear sweep \
         wastes cycles multiplying the contentious bolts' cost."
    );
}
