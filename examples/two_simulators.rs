//! Cross-validate the two substrate simulators: the per-tuple
//! discrete-event simulation and the fast flow-level model evaluate the
//! same configuration and should agree on throughput to within the
//! fidelity gap.
//!
//! ```text
//! cargo run --release --example two_simulators
//! ```

use mtm::stormsim::topology::TopologyBuilder;
use mtm::stormsim::{
    ClusterSpec, FlowSimulator, Simulator, StormConfig, TupleSimOptions, TupleSimulator,
};

fn main() {
    // A small three-stage pipeline on a 4-machine cluster.
    let mut tb = TopologyBuilder::new("xcheck");
    let s = tb.spout("source", 0.5);
    let a = tb.bolt("stage-a", 3.0);
    let b = tb.bolt("stage-b", 6.0);
    tb.connect(s, a).connect(a, b);
    let topo = tb.build().unwrap();

    let mut cluster = ClusterSpec::paper_cluster();
    cluster.machines = 4;

    // Bind each simulator once: the topology analysis is shared by
    // every configuration evaluated below.
    let flow_sim = FlowSimulator::new(topo.clone(), cluster.clone(), 60.0).unwrap();
    let opts = TupleSimOptions {
        window_s: 60.0,
        max_events: 20_000_000,
        network_delay_s: 0.0005,
    };
    let tuple_sim = TupleSimulator::new(topo, cluster, opts).unwrap();

    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "configuration", "flow tps", "tuple tps", "ratio"
    );
    for hint in [1u32, 2, 4, 8] {
        let mut config = StormConfig::uniform_hints(3, hint);
        config.batch_size = 400;
        config.batch_parallelism = 4;

        let flow = flow_sim.evaluate(&config).unwrap();
        let tuple = tuple_sim.evaluate(&config).unwrap();

        let ratio = if tuple.throughput_tps > 0.0 {
            flow.throughput_tps / tuple.throughput_tps
        } else {
            f64::NAN
        };
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>8.2}",
            format!("hints={hint} (x3 nodes)"),
            flow.throughput_tps,
            tuple.throughput_tps,
            ratio
        );
    }
    println!(
        "\nThe flow model is the one the optimization loops call (microseconds \
         per evaluation); the tuple-level DES plays out every tuple, ack and \
         batch commit. Agreement within tens of percent across configurations \
         is what makes the fast model a usable objective."
    );
}
