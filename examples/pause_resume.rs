//! Pause and resume an optimization run — the Spearmint feature the
//! paper's authors singled out ("it supports pausing and resuming the
//! optimization process, a feature that turned out to be important in our
//! evaluation setup": their cluster was student workstations).
//!
//! ```text
//! cargo run --release --example pause_resume
//! ```

use mtm::bayesopt::space::{Param, ParamSpace};
use mtm::bayesopt::{BayesOpt, BoConfig, Snapshot};

fn objective(x: f64, y: f64) -> f64 {
    // A bumpy 2-D surface with its peak near (3, -1).
    -((x - 3.0).powi(2) + (y + 1.0).powi(2)) + (2.0 * x).sin() * (3.0 * y).cos()
}

fn main() {
    let space = ParamSpace::new(vec![
        Param::float("x", -5.0, 5.0),
        Param::float("y", -5.0, 5.0),
    ]);
    let config = BoConfig::builder().seed(99).build().expect("valid config");
    let mut bo = BayesOpt::new(space, config);

    // Run ten steps...
    for _ in 0..10 {
        let c = bo.propose().expect("propose");
        let v = objective(c.values[0].as_float(), c.values[1].as_float());
        bo.observe(c, v).expect("finite objective");
    }
    println!("after 10 steps: best = {:.3}", bo.best().unwrap().y);

    // ...the cluster goes away: snapshot to JSON (in a real deployment,
    // to disk).
    let json = Snapshot::capture(bo).to_json().expect("serialize");
    println!("snapshot captured: {} bytes of JSON", json.len());

    // ...the next morning: resume and continue. Because per-step
    // randomness derives from (seed, step), the resumed run proposes
    // exactly what the uninterrupted one would have.
    let mut bo = Snapshot::from_json(&json)
        .expect("parse")
        .resume()
        .expect("resume");
    for _ in 0..15 {
        let c = bo.propose().expect("propose");
        let v = objective(c.values[0].as_float(), c.values[1].as_float());
        bo.observe(c, v).expect("finite objective");
    }
    let best = bo.best().unwrap();
    println!(
        "after resume + 15 steps: best = {:.3} at x={:.2}, y={:.2} (true peak ~ (3, -1))",
        best.y,
        best.values[0].as_float(),
        best.values[1].as_float()
    );
}
