//! Quickstart: tune the parallelism of a hand-built topology with
//! Bayesian Optimization and compare against the naive baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mtm::prelude::*;
use mtm::stormsim::topology::TopologyBuilder;

fn main() {
    // 1. Describe a stream-processing topology: a log-ingestion pipeline
    //    with a cheap parser, an expensive enrichment stage, and a sink
    //    that writes to a contended external store.
    let mut tb = TopologyBuilder::new("log-pipeline");
    let source = tb.spout("kafka-source", 1.0); // 1 compute unit ≈ 1 ms/tuple
    let parse = tb.bolt("parse", 4.0);
    let enrich = tb.bolt("enrich", 20.0);
    let store = tb.bolt("store", 6.0);
    tb.connect(source, parse)
        .connect(parse, enrich)
        .connect(enrich, store);
    tb.contentious(store, true); // the store is a shared resource
    let topo = tb.build().expect("valid topology");

    // 2. The cluster: the paper's 80 machines x 4 cores.
    let objective = Objective::new(topo, ClusterSpec::paper_cluster());

    // 3. Baseline: parallel linear ascent (same hint everywhere).
    let opts = RunOptions {
        max_steps: 30,
        confirm_reps: 10,
        ..Default::default()
    };
    let pla = mtm::core::run_experiment(|_s| Strategy::pla(), &objective, &opts);

    // 4. Bayesian Optimization over per-operator hints + max-tasks.
    let bo = mtm::core::run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::Hints, seed),
        &objective,
        &opts,
    );

    println!("log-pipeline on 80x4 cores, 30 optimization steps each:\n");
    for (name, result) in [("pla", &pla), ("bo", &bo)] {
        let (min, max) = result.min_max();
        println!(
            "  {name:<4} best throughput {:>8.0} tuples/s  (confirmed {:.0}..{:.0}, step {} first hit the best)",
            result.mean(),
            min,
            max,
            result.winner().best_step,
        );
    }
    let best = bo.winner();
    println!("\nbo's winning configuration:");
    println!("  hints       = {:?}", best.best_config.parallelism_hints);
    println!("  max-tasks   = {}", best.best_config.max_tasks);
    let detail = objective.inspect(&best.best_config);
    println!("  bottleneck  = {}", detail.bottleneck.label());
    println!("  cpu util    = {:.1}%", detail.cpu_utilization * 100.0);
    println!("  net/worker  = {:.2} MB/s", detail.avg_worker_net_mbps);

    if bo.mean() >= pla.mean() {
        println!("\nBO matched or beat the linear baseline — as the paper found for\ntopologies with contentious resources (Fig. 4, right column).");
    } else {
        println!("\nThe linear baseline won this one — on homogeneous topologies the\npaper saw the same (Fig. 4, top-left).");
    }
}
