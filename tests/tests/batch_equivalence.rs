//! The batched evaluation contract, cross-crate: on every preset
//! topology and on generated graphs up to 10k vertices, the unified
//! [`Simulator`] trait path and the batched [`SimBatch`] path must be
//! *bitwise* identical to the legacy free-function path and to N
//! sequential evaluations. Not "close" — identical: the optimizer's
//! determinism story (journal replay, the determinism probe) rests on
//! every path through the simulator producing the same bits.

#![allow(deprecated)] // half of each property IS the deprecated shim

use proptest::prelude::*;

use mtm_stormsim::{simulate_flow, ClusterSpec, FlowSimulator, SimBatch, Simulator, StormConfig};
use mtm_topogen::{generate_layer_by_layer, make_condition, Condition, GgenParams, SizeClass};

/// Every preset cell of the paper's experiment grid.
fn presets() -> Vec<(SizeClass, Condition)> {
    let mut cells = Vec::new();
    for size in SizeClass::all() {
        for cond in Condition::grid() {
            cells.push((size, cond));
        }
    }
    cells
}

#[test]
fn trait_path_matches_free_function_on_every_preset() {
    let cluster = ClusterSpec::paper_cluster();
    for (size, cond) in presets() {
        let topo = make_condition(size, &cond, 7);
        let sim = FlowSimulator::new(topo.clone(), cluster.clone(), 120.0).unwrap();
        for hint in [1u32, 3, 9, 27] {
            let config = StormConfig::uniform_hints(topo.n_nodes(), hint);
            let old = simulate_flow(&topo, &config, &cluster, 120.0);
            let new = sim.evaluate(&config).unwrap();
            assert_eq!(
                old, new,
                "{size:?}/{cond:?} hint {hint}: trait path diverged from the shim"
            );
        }
    }
}

#[test]
fn batch_matches_sequential_on_every_preset() {
    let cluster = ClusterSpec::paper_cluster();
    for (size, cond) in presets() {
        let topo = make_condition(size, &cond, 11);
        let n = topo.n_nodes();
        let sim = FlowSimulator::new(topo, cluster.clone(), 120.0).unwrap();
        let sweep: Vec<StormConfig> = (1..=16).map(|h| StormConfig::uniform_hints(n, h)).collect();
        let mut batch = SimBatch::new();
        sim.evaluate_batch_into(&sweep, &mut batch).unwrap();
        assert_eq!(batch.len(), sweep.len());
        for (i, (c, batched)) in sweep.iter().zip(batch.results()).enumerate() {
            let sequential = sim.evaluate(c).unwrap();
            assert_eq!(
                &sequential, batched,
                "{size:?}/{cond:?} config {i}: batch diverged from sequential"
            );
        }
    }
}

#[test]
fn batch_matches_sequential_at_ten_thousand_vertices() {
    // The scale the batched engine exists for: a generated 10k-vertex
    // graph on a proportionally scaled-out cluster (10k tasks on the
    // 80-machine paper cluster thrash on spin overhead alone).
    let params = GgenParams::with_density(10_000, 12, 2.5, 0xBA7C).unwrap();
    let topo = generate_layer_by_layer(&params);
    assert_eq!(topo.n_nodes(), 10_000);
    let mut cluster = ClusterSpec::paper_cluster();
    cluster.machines = 400;
    let sim = FlowSimulator::new(topo, cluster, 120.0).unwrap();
    let sweep: Vec<StormConfig> = (0..16)
        .map(|i| {
            let mut c = StormConfig::uniform_hints(10_000, 1);
            c.max_tasks = 10_000;
            c.ackers = 32;
            c.batch_size = 30_000 + 2_000 * i;
            c.batch_parallelism = 1;
            c
        })
        .collect();
    let batched = sim.evaluate_batch(&sweep).unwrap();
    assert_eq!(batched.len(), sweep.len());
    for (c, b) in sweep.iter().zip(&batched) {
        assert_eq!(&sim.evaluate(c).unwrap(), b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random generated topologies and random sweeps: the batch is the
    /// sequential results, element for element, bit for bit.
    #[test]
    fn batch_equals_sequential_on_random_graphs(
        vertices in 8usize..120,
        layers in 2usize..6,
        p in 0.05f64..0.6,
        seed in any::<u64>(),
        hints in prop::collection::vec(1u32..24, 1..12),
        bs in 100u32..20_000,
        bp in 1u32..12,
    ) {
        let params = GgenParams::new(vertices.max(layers), layers, p, seed)
            .expect("ranges satisfy the validator");
        let topo = generate_layer_by_layer(&params);
        let n = topo.n_nodes();
        let sim = FlowSimulator::new(topo, ClusterSpec::paper_cluster(), 120.0).unwrap();
        let sweep: Vec<StormConfig> = hints
            .iter()
            .map(|&h| {
                let mut c = StormConfig::uniform_hints(n, h);
                c.batch_size = bs;
                c.batch_parallelism = bp;
                c
            })
            .collect();
        let batched = sim.evaluate_batch(&sweep).unwrap();
        prop_assert_eq!(batched.len(), sweep.len());
        for (c, b) in sweep.iter().zip(&batched) {
            prop_assert_eq!(&sim.evaluate(c).unwrap(), b);
        }
    }
}
