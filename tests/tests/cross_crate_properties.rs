//! Property-based tests over cross-crate invariants: random topologies
//! and configurations through generation → flow analysis → simulation.

use proptest::prelude::*;

use mtm_core::paramsets::ParamSet;
use mtm_stormsim::flow;
use mtm_stormsim::{ClusterSpec, FlowSimulator, Simulator, StormConfig};
use mtm_topogen::{generate_layer_by_layer, make_condition, Condition, GgenParams, SizeClass};

fn arb_params() -> impl Strategy<Value = GgenParams> {
    (6usize..40, 2usize..6, 0.05f64..0.6, any::<u64>()).prop_map(|(vertices, layers, p, seed)| {
        GgenParams::new(vertices.max(layers), layers, p, seed)
            .expect("strategy ranges satisfy the validator")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_topologies_are_structurally_sound(params in arb_params()) {
        let t = generate_layer_by_layer(&params);
        prop_assert_eq!(t.n_nodes(), params.vertices);
        // Acyclic by construction (validated); every node connected.
        for v in 0..t.n_nodes() {
            prop_assert!(!t.in_edges(v).is_empty() || !t.out_edges(v).is_empty());
        }
        // Spouts have no inputs; layering is consistent with edges.
        let layers = t.layers();
        for e in t.edges() {
            prop_assert!(layers[e.from] < layers[e.to]);
        }
    }

    #[test]
    fn flow_is_conserved_under_split_routing(params in arb_params()) {
        let t = generate_layer_by_layer(&params);
        let f = flow::analyze(&t);
        // With unit selectivity and split routing, flow into sinks equals
        // flow out of spouts (1.0).
        prop_assert!((f.sink_flow - 1.0).abs() < 1e-9,
            "sink flow {} != 1", f.sink_flow);
        // All flows non-negative and finite.
        prop_assert!(f.node_flow.iter().all(|x| x.is_finite() && *x >= 0.0));
        prop_assert!(f.total_processing >= 1.0);
    }

    #[test]
    fn simulation_never_reports_negative_or_nan(
        params in arb_params(),
        hint in 1u32..40,
        bs in 50u32..20_000,
        bp in 1u32..16,
    ) {
        let t = generate_layer_by_layer(&params);
        let mut config = StormConfig::uniform_hints(t.n_nodes(), hint);
        config.batch_size = bs;
        config.batch_parallelism = bp;
        let sim = FlowSimulator::new(t, ClusterSpec::paper_cluster(), 120.0).unwrap();
        let r = sim.evaluate(&config).unwrap();
        prop_assert!(r.throughput_tps >= 0.0);
        prop_assert!(r.throughput_tps.is_finite());
        prop_assert!(r.avg_worker_net_mbps >= 0.0);
        prop_assert!((0.0..=1.0).contains(&r.cpu_utilization));
    }

    #[test]
    fn normalized_tasks_respect_the_cap(
        hints in prop::collection::vec(0u32..500, 3..30),
        max_tasks in 1u32..300,
    ) {
        let n = hints.len();
        // Build a chain topology of matching size.
        let mut tb = mtm_stormsim::topology::TopologyBuilder::new("chain");
        let mut prev = tb.spout("s", 1.0);
        for i in 1..n {
            let b = tb.bolt(&format!("b{i}"), 1.0);
            tb.connect(prev, b);
            prev = b;
        }
        let t = tb.build().unwrap();
        let config = StormConfig {
            parallelism_hints: hints,
            max_tasks,
            ..StormConfig::baseline(n)
        };
        let tasks = config.normalized_tasks(&t);
        prop_assert!(tasks.iter().all(|&x| x >= 1));
        let cap = max_tasks.max(n as u32) as u64;
        let total: u64 = tasks.iter().map(|&x| x as u64).sum();
        prop_assert!(total <= cap.max(n as u64),
            "total {total} exceeds cap {cap}");
    }

    #[test]
    fn paramset_decoding_always_yields_valid_configs(
        seed in any::<u64>(),
        cond_idx in 0usize..4,
    ) {
        use rand::SeedableRng;
        let t = make_condition(SizeClass::Small, &Condition::grid()[cond_idx], seed);
        let base = StormConfig::baseline(t.n_nodes());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for set in [
            ParamSet::Hints,
            ParamSet::HintsBatch,
            ParamSet::BatchConcurrency { fixed_hint: 11 },
        ] {
            let space = set.space(&t);
            let values = space.sample(&mut rng);
            let config = set.to_config(&t, &base, &values);
            prop_assert!(config.validate(&t).is_ok());
            // And the unit-cube round trip is stable.
            let u = space.encode(&values);
            prop_assert_eq!(space.decode(&u), values);
        }
    }
}
