//! The two substrate simulators must tell the same story: the fast flow
//! model (the optimization objective) is validated against the per-tuple
//! discrete-event simulation on configurations small enough to play out.

use mtm_stormsim::topology::TopologyBuilder;
use mtm_stormsim::{
    ClusterSpec, FlowSimulator, Simulator, StormConfig, Topology, TupleSimOptions, TupleSimulator,
};

fn pipeline() -> Topology {
    let mut tb = TopologyBuilder::new("agree");
    let s = tb.spout("s", 0.5);
    let a = tb.bolt("a", 3.0);
    let b = tb.bolt("b", 6.0);
    let c = tb.bolt("c", 2.0);
    tb.connect(s, a).connect(a, b).connect(b, c);
    tb.build().unwrap()
}

fn cluster() -> ClusterSpec {
    let mut cl = ClusterSpec::paper_cluster();
    cl.machines = 4;
    cl
}

fn config(hint: u32) -> StormConfig {
    let mut c = StormConfig::uniform_hints(4, hint);
    c.batch_size = 300;
    c.batch_parallelism = 4;
    c
}

fn run_both(hint: u32) -> (f64, f64) {
    let topo = pipeline();
    let cl = cluster();
    let cfg = config(hint);
    let flow_sim = FlowSimulator::new(topo.clone(), cl.clone(), 60.0).unwrap();
    let flow = flow_sim.evaluate(&cfg).unwrap();
    let opts = TupleSimOptions {
        window_s: 60.0,
        max_events: 30_000_000,
        network_delay_s: 0.0005,
    };
    let tuple_sim = TupleSimulator::new(topo, cl, opts).unwrap();
    let tuple = tuple_sim.evaluate(&cfg).unwrap();
    (flow.throughput_tps, tuple.throughput_tps)
}

#[test]
fn absolute_throughput_agrees_within_fidelity_gap() {
    for hint in [1u32, 2, 4] {
        let (flow, tuple) = run_both(hint);
        assert!(
            flow > 0.0 && tuple > 0.0,
            "hint {hint}: both simulators must run"
        );
        let ratio = flow / tuple;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "hint {hint}: flow {flow:.0} vs tuple {tuple:.0} (ratio {ratio:.2}) \
             should agree within 2x"
        );
    }
}

#[test]
fn both_simulators_rank_configurations_identically() {
    // The optimization loop only needs the *ordering* to be right:
    // require perfect rank correlation over a hint sweep.
    let mut flows = Vec::new();
    let mut tuples = Vec::new();
    for hint in [1u32, 2, 8] {
        let (flow, tuple) = run_both(hint);
        flows.push(flow);
        tuples.push(tuple);
    }
    let rho = mtm_stats::corr::spearman(&flows, &tuples).expect("non-degenerate measurements");
    assert!(
        (rho - 1.0).abs() < 1e-9,
        "simulators must agree on ordering: rho = {rho} ({flows:?} vs {tuples:?})"
    );
}

#[test]
fn both_simulators_agree_that_contention_hurts() {
    let build = |contentious: bool| {
        let mut tb = TopologyBuilder::new("cont");
        let s = tb.spout("s", 0.5);
        let a = tb.bolt("a", 4.0);
        tb.connect(s, a);
        tb.contentious(a, contentious);
        tb.build().unwrap()
    };
    let cl = cluster();
    let mut cfg = StormConfig::uniform_hints(2, 6);
    cfg.batch_size = 200;
    cfg.batch_parallelism = 3;
    let opts = TupleSimOptions {
        window_s: 40.0,
        max_events: 20_000_000,
        network_delay_s: 0.0005,
    };

    let flow_of = |contentious: bool| {
        FlowSimulator::new(build(contentious), cl.clone(), 40.0)
            .unwrap()
            .evaluate(&cfg)
            .unwrap()
            .throughput_tps
    };
    let tuple_of = |contentious: bool| {
        TupleSimulator::new(build(contentious), cl.clone(), opts)
            .unwrap()
            .evaluate(&cfg)
            .unwrap()
            .throughput_tps
    };
    let flow_clean = flow_of(false);
    let flow_cont = flow_of(true);
    let tuple_clean = tuple_of(false);
    let tuple_cont = tuple_of(true);

    assert!(
        flow_cont < flow_clean,
        "flow model: contention must cost throughput"
    );
    assert!(
        tuple_cont < tuple_clean,
        "tuple model: contention must cost throughput"
    );
}

#[test]
fn network_accounting_is_consistent() {
    let topo = pipeline();
    let cl = cluster();
    let cfg = config(4);
    let flow = FlowSimulator::new(topo.clone(), cl.clone(), 60.0)
        .unwrap()
        .evaluate(&cfg)
        .unwrap();
    let opts = TupleSimOptions {
        window_s: 60.0,
        max_events: 30_000_000,
        network_delay_s: 0.0005,
    };
    let tuple = TupleSimulator::new(topo, cl, opts)
        .unwrap()
        .evaluate(&cfg)
        .unwrap();
    assert!(flow.avg_worker_net_mbps > 0.0);
    assert!(tuple.avg_worker_net_mbps > 0.0);
    let ratio = flow.avg_worker_net_mbps / tuple.avg_worker_net_mbps;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "network metrics should be same order: {:.3} vs {:.3}",
        flow.avg_worker_net_mbps,
        tuple.avg_worker_net_mbps
    );
}
