//! End-to-end tuning flows: optimizer ↔ simulator ↔ experiment protocol.

use mtm_core::objective::synthetic_base;
use mtm_core::{run_experiment, run_pass, Objective, ParamSet, RunOptions, Strategy};
use mtm_stormsim::noise::MeasurementNoise;
use mtm_stormsim::ClusterSpec;
use mtm_topogen::{make_condition, sundog_topology, Condition, SizeClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn contended_objective() -> Objective {
    let topo = make_condition(
        SizeClass::Small,
        &Condition {
            time_imbalance: 0.0,
            contention: 0.25,
        },
        0x2015,
    );
    let base = synthetic_base(&topo);
    Objective::new(topo, ClusterSpec::paper_cluster()).with_base(base)
}

#[test]
fn bo_beats_random_search_on_a_contended_topology() {
    let objective = contended_objective();
    let budget = 25;

    // BO over hints.
    let mut bo = Strategy::bo(objective.topology(), ParamSet::Hints, 11);
    let opts = RunOptions {
        max_steps: budget,
        confirm_reps: 1,
        passes: 1,
        ..Default::default()
    };
    let bo_pass = run_pass(&mut bo, &objective, &opts);

    // Random search with the same budget over the same space.
    let space = ParamSet::Hints.space(objective.topology());
    let mut rng = StdRng::seed_from_u64(999);
    let mut random_best = f64::NEG_INFINITY;
    for step in 0..budget {
        let values = space.sample(&mut rng);
        let config =
            ParamSet::Hints.to_config(objective.topology(), objective.base_config(), &values);
        random_best = random_best.max(objective.measure(&config, 7_000 + step as u64));
    }

    assert!(
        bo_pass.best_throughput >= random_best * 0.9,
        "BO ({:.0}) should be at least competitive with random search ({:.0})",
        bo_pass.best_throughput,
        random_best
    );
}

#[test]
fn full_experiment_protocol_produces_consistent_records() {
    let objective = contended_objective();
    let opts = RunOptions {
        max_steps: 12,
        confirm_reps: 6,
        passes: 2,
        seed: 5,
        ..Default::default()
    };
    let result = run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::Hints, seed),
        &objective,
        &opts,
    );

    assert_eq!(result.passes.len(), 2);
    assert_eq!(result.confirmation.len(), 6);
    // The recorded best matches the trajectory maximum.
    for pass in &result.passes {
        let max = pass
            .steps
            .iter()
            .map(|s| s.throughput)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((pass.best_throughput - max.max(0.0)).abs() < 1e-9);
        // best_step points at a step achieving the best.
        let at = pass.steps[pass.best_step].throughput;
        assert!((at - pass.best_throughput).abs() < 1e-9 || pass.best_throughput == 0.0);
    }
    // The winner really is the better pass.
    assert!(result
        .passes
        .iter()
        .all(|p| p.best_throughput <= result.winner().best_throughput));
}

#[test]
fn experiments_are_reproducible_given_the_seed() {
    let objective = contended_objective();
    let opts = RunOptions {
        max_steps: 8,
        confirm_reps: 3,
        passes: 1,
        seed: 77,
        ..Default::default()
    };
    let a = run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::Hints, seed),
        &objective,
        &opts,
    );
    let b = run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::Hints, seed),
        &objective,
        &opts,
    );
    let traj_a: Vec<f64> = a.winner().steps.iter().map(|s| s.throughput).collect();
    let traj_b: Vec<f64> = b.winner().steps.iter().map(|s| s.throughput).collect();
    assert_eq!(traj_a, traj_b, "same seed, same trajectory");
    assert_eq!(a.confirmation, b.confirmation);
}

#[test]
fn sundog_batch_surface_beats_hints_only_surface() {
    // The Fig. 8 story at miniature budget, without measurement noise so
    // the comparison is crisp.
    let topo = sundog_topology();
    let mut base = mtm_stormsim::StormConfig::baseline(topo.n_nodes());
    base.batch_size = 50_000;
    base.batch_parallelism = 5;
    let objective = Objective::new(topo, ClusterSpec::paper_cluster())
        .with_base(base)
        .with_noise(MeasurementNoise::none());
    let opts = RunOptions {
        max_steps: 25,
        confirm_reps: 2,
        passes: 1,
        seed: 3,
        ..Default::default()
    };

    let h_only = run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::Hints, seed),
        &objective,
        &opts,
    );
    let with_batch = run_experiment(
        |seed| Strategy::bo(objective.topology(), ParamSet::HintsBatch, seed),
        &objective,
        &opts,
    );
    assert!(
        with_batch.mean() > h_only.mean() * 1.3,
        "opening the batch parameters must pay off substantially: {:.0} vs {:.0}",
        with_batch.mean(),
        h_only.mean()
    );
}

#[test]
fn informed_strategies_respect_topology_weights() {
    // On a fan-in topology the informed strategies give the heavy merge
    // node more tasks than the spouts.
    use mtm_stormsim::topology::TopologyBuilder;
    let mut tb = TopologyBuilder::new("fan");
    let s1 = tb.spout("s1", 1.0);
    let s2 = tb.spout("s2", 1.0);
    let s3 = tb.spout("s3", 1.0);
    let merge = tb.bolt("merge", 10.0);
    tb.connect(s1, merge).connect(s2, merge).connect(s3, merge);
    let topo = tb.build().unwrap();

    let mut ipla = Strategy::ipla(&topo);
    let base = mtm_stormsim::StormConfig::baseline(4);
    let config = ipla.propose(&topo, &base, 7).unwrap(); // multiplier 8
    let hints = &config.parallelism_hints;
    assert!(
        hints[3] > hints[0],
        "merge node (weight 3) must get more tasks than a spout (weight 1): {hints:?}"
    );
}
