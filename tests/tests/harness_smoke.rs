//! Smoke tests of the figure harness: every table/figure runner produces
//! plausible output at smoke scale.

use mtm_bench::figures;
use mtm_bench::{grid, Scale};

#[test]
fn tables_render() {
    let t1 = figures::table1::run();
    assert!(t1.contains("Batch Size"));

    let t2 = figures::table2::run(5);
    assert_eq!(t2.rows.len(), 6); // ours + paper for each size

    let t3 = figures::table3::run();
    assert!(t3.contains("DEBS"));
}

#[test]
fn fig3_reports_unsaturated_network() {
    let t = figures::fig3::run(6);
    assert_eq!(t.rows.len(), 4);
    assert!(t
        .rows
        .iter()
        .all(|r| r.values[0] > 0.0 && r.values[0] < 128.0));
}

#[test]
fn synthetic_grid_figures_flow_from_one_grid() {
    // One smoke grid feeds figs 4-7, like the real binaries.
    let g = grid::run(Scale::Smoke);

    let f4 = figures::fig4::run(&g);
    // 4 conditions × 3 sizes × 8 strategies (incl. the zoo).
    assert_eq!(f4.rows.len(), 96);
    assert!(f4.rows.iter().all(|r| r.values[0] >= 0.0));

    let f5 = figures::fig5::run(&g);
    assert!(f5.rows.iter().all(|r| r.values[0] <= r.values[2]));

    let f6 = figures::fig6::run(&g);
    assert_eq!(f6.len(), 4);

    let f7 = figures::fig7::run(&g);
    assert!(f7
        .rows
        .iter()
        .filter(|r| r.label.ends_with("| pla"))
        .all(|r| r.values[0] < 0.01));

    // The shape reports never panic and mention their checks.
    assert!(figures::fig4::shape_report(&g).contains("bo180"));
    assert!(figures::fig5::shape_report(&g).contains("steps-to-best"));
    assert!(figures::fig7::shape_report(&g).contains("step time"));
}

#[test]
fn fig8_smoke() {
    let opts60 = Scale::Smoke.run_options(1);
    let opts180 = Scale::Smoke.run_options_extended(1);
    let r = figures::fig8::run(&opts60, &opts180);
    let a = figures::fig8::throughput_table(&r);
    assert_eq!(a.rows.len(), 6);
    let report = figures::fig8::significance_report(&r);
    assert!(report.contains("pinned hint"));
}
