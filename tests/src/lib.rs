//! Integration-test crate: the tests under `tests/tests/` exercise flows
//! that span multiple `mtm` crates (optimizer ↔ simulator ↔ topology
//! generation ↔ experiment protocol). See each test file for what it
//! pins down.

/// Marker so the crate has a target; all substance lives in the
/// integration tests.
pub const CRATE: &str = "mtm-integration";
