//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal (de)serialization framework under the same crate name. It is
//! intentionally *not* the real serde data model: serialization goes
//! through an owned [`Value`] tree (JSON-shaped), and the derive macros in
//! `serde_derive` generate impls of the two one-method traits below. The
//! public surface the workspace relies on is identical: `use
//! serde::{Serialize, Deserialize}`, `#[derive(Serialize, Deserialize)]`,
//! `#[serde(default)]`, `#[serde(default = "path")]`, and
//! `#[serde(rename_all = "...")]` on enums — with serde's externally
//! tagged enum representation so hand-written JSON specs keep parsing.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation all
/// (de)serialization flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also produced for non-finite floats, like serde_json).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON numbers without fraction/exponent).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable complaint.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Arbitrary error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` of `{ty}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Derive-macro helper: look up `key` in an object's pairs.
#[doc(hidden)]
pub fn __get<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::custom(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!(
                        "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range")))?,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::custom(format!(
                        "expected unsigned integer, got {other:?}"))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!(
                        "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    // serde_json writes non-finite floats as null; accept
                    // the round trip back as NaN.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        "expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// `Cow` serializes exactly like its owned form (`Cow<str>` and `String`
// produce the same `Value::Str`), so switching a field between the two
// never changes serialized bytes. Deserialization always materializes
// the owned variant.
impl<T> Serialize for std::borrow::Cow<'_, T>
where
    T: Serialize + ToOwned + ?Sized,
{
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T> Deserialize for std::borrow::Cow<'static, T>
where
    T: ToOwned + ?Sized,
    T::Owned: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::Owned::from_value(v).map(std::borrow::Cow::Owned)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected array for tuple"))?;
                if items.len() != LEN {
                    return Err(DeError::custom(format!(
                        "expected {LEN}-tuple, got {} elements", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic regardless of hasher
        // state — mtm-check's determinism pass diffs output byte-for-byte.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object for map"))?;
        pairs
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object for map"))?;
        pairs
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
