//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! value-tree model.
//!
//! Provides exactly the calls the mtm workspace makes: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`]/[`from_value`], and
//! the [`Error`] type. Numbers round-trip losslessly: integers are
//! written verbatim, floats use Rust's shortest round-trip formatting
//! (so BO snapshot save/resume is bit-exact), and non-finite floats are
//! written as `null`, matching upstream `serde_json`.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display for floats is the shortest string that
                // round-trips, so parse(format(x)) == x bit-for-bit.
                let s = f.to_string();
                out.push_str(&s);
                // Keep a float marker so 1.0 doesn't come back as Int(1)
                // in contexts that care; harmless to integer-typed fields
                // because their Deserialize accepts whole floats.
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char).unwrap_or('∅')
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not needed by any caller;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in [
            "0",
            "-7",
            "3.25",
            "1e-3",
            "true",
            "false",
            "null",
            "\"hi\\n\"",
        ] {
            let v = parse(text).unwrap();
            let back = parse(&{
                let mut s = String::new();
                write_value(&v, None, 0, &mut s);
                s
            })
            .unwrap();
            assert_eq!(v, back, "round-trip of {text}");
        }
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for &x in &[0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 6.02e23] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn nan_becomes_null_and_back() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Str("d".into())));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0], Value::Int(1));
        assert_eq!(arr[1], Value::Float(2.5));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("{nope").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let mut s = String::new();
        write_value(&v, Some(2), 0, &mut s);
        assert!(s.contains("\n  \"a\": ["));
        assert_eq!(parse(&s).unwrap(), v);
    }
}
