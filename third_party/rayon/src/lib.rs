//! Offline stand-in for `rayon`.
//!
//! The workspace parallelizes two hot paths with rayon (`par_chunks_mut`
//! over matmul output rows, `into_par_iter` over confirmation runs). With
//! no crates.io access this shim keeps those call sites compiling by
//! returning the *sequential* std iterators — same results, same API
//! shape, no thread pool. Swap back to real rayon by flipping the
//! workspace dependency; no call site changes.

/// Parallel-iterator entry points, sequentially executed.
pub mod prelude {
    /// Mirror of `rayon::prelude::ParallelSliceMut` (subset).
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// Mirror of `rayon::prelude::ParallelSlice` (subset).
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// Mirror of `rayon::prelude::IntoParallelIterator` (subset): the
    /// "parallel" iterator is the type's ordinary [`IntoIterator`] one.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Sequential stand-in for `into_par_iter`.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// Mirror of `rayon::prelude::IntoParallelRefIterator` (subset).
    pub trait IntoParallelRefIterator<'a> {
        /// Element reference type.
        type Iter: Iterator;

        /// Sequential stand-in for `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// Mirror of `rayon::prelude::ParallelIterator::for_each_init`
    /// (subset). Real rayon calls `init` once per worker and hands each
    /// worker its own scratch value; sequentially there is exactly one
    /// worker, so `init` runs once and that single scratch value threads
    /// through every item.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// Sequential stand-in for `for_each_init`.
        fn for_each_init<T, INIT, OP>(self, init: INIT, mut op: OP)
        where
            INIT: Fn() -> T,
            OP: FnMut(&mut T, Self::Item),
        {
            let mut scratch = init();
            for item in self {
                op(&mut scratch, item);
            }
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}
}

/// Sequential stand-in for `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_slice() {
        let mut v = [0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_matches_sequential() {
        let got: Vec<u64> = (0..5u64).into_par_iter().map(|x| x * x).collect();
        assert_eq!(got, vec![0, 1, 4, 9, 16]);
    }
}
