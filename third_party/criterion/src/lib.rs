//! Offline stand-in for `criterion`.
//!
//! Compiles the workspace's `harness = false` benches and runs each
//! benchmark a small fixed number of iterations, printing mean wall-clock
//! time. No warm-up control, outlier rejection, or statistics — this shim
//! exists so `cargo bench` keeps working (and so benches stay compiling
//! under `cargo test --benches`) without crates.io access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the measured closure; collects timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh input per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Probe once, then pick an iteration count targeting ~0.2 s.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter = probe.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(200).as_nanos() / per_iter.as_nanos()).clamp(1, 1000);
        let mut b = Bencher {
            iters: iters as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / b.iters as f64;
        println!(
            "{}/{id}: {:>12.3} µs/iter ({} iters)",
            self.name,
            mean * 1e6,
            b.iters
        );
    }

    /// Benchmark `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, &mut |b| f(b, input));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}

    /// Accepted and ignored (upstream tunes sampling).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Benchmark `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
        };
        group.run_one(name, &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
