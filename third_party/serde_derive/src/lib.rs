//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stand-in.
//!
//! Written against `proc_macro` directly (the environment has no
//! `syn`/`quote`), so the parser is a small hand-rolled walk over the
//! token stream. Supported shapes — exactly what the mtm workspace uses:
//!
//! * structs with named fields (any visibility), including
//!   `#[serde(default)]` and `#[serde(default = "path")]` on fields;
//! * enums with unit, tuple, and struct variants in serde's externally
//!   tagged representation, including `#[serde(rename_all = "...")]`
//!   (`lowercase`, `snake_case`, `camelCase`, `UPPERCASE`).
//!
//! Generics are intentionally unsupported; deriving on a generic type is
//! a compile error rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field of a struct or struct variant.
struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

/// Enum variant.
struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Number of tuple elements.
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        rename_all: Option<String>,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Collect `#[serde(...)]` key/value pairs from an attribute group's inner
/// tokens; returns pairs like ("default", None) or ("default", Some("one")).
fn parse_serde_attr(group: &proc_macro::Group) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    // Expect: Ident("serde") Group(Paren, inner)
    if tokens.len() == 2 {
        if let (TokenTree::Ident(id), TokenTree::Group(inner)) = (&tokens[0], &tokens[1]) {
            if id.to_string() == "serde" && inner.delimiter() == Delimiter::Parenthesis {
                let inner_tokens: Vec<TokenTree> = inner.stream().into_iter().collect();
                let mut i = 0;
                while i < inner_tokens.len() {
                    if let TokenTree::Ident(key) = &inner_tokens[i] {
                        let key = key.to_string();
                        if i + 2 < inner_tokens.len()
                            && matches!(&inner_tokens[i + 1], TokenTree::Punct(p) if p.as_char() == '=')
                        {
                            let val = match &inner_tokens[i + 2] {
                                TokenTree::Literal(l) => {
                                    l.to_string().trim_matches('"').to_string()
                                }
                                other => other.to_string(),
                            };
                            out.push((key, Some(val)));
                            i += 3;
                        } else {
                            out.push((key, None));
                            i += 1;
                        }
                    } else {
                        i += 1; // skip commas
                    }
                }
            }
        }
    }
    out
}

/// Consume leading attributes (`# [ ... ]`) at `tokens[*i]`, returning any
/// serde key/values found.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, Option<String>)> {
    let mut serde_kv = Vec::new();
    while *i + 1 < tokens.len() {
        let is_pound = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                serde_kv.extend(parse_serde_attr(g));
                *i += 2;
                continue;
            }
        }
        break;
    }
    serde_kv
}

/// Parse the fields of a braced named-field body.
fn parse_named_fields(body: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attrs(&tokens, &mut i);
        // Optional visibility: `pub` or `pub(...)`.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let default = attrs
            .iter()
            .find(|(k, _)| k == "default")
            .map(|(_, v)| v.clone());
        fields.push(Field { name, default });
    }
    fields
}

/// Parse the variants of an enum body.
fn parse_variants(body: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count top-level comma-separated elements.
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut depth = 0i32;
                let mut n = if inner.is_empty() { 0 } else { 1 };
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => n += 1,
                        _ => {}
                    }
                }
                // A trailing comma would overcount; the workspace doesn't
                // write `Variant(T,)`, so keep the parser simple.
                i += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g);
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant `= expr` and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = skip_attrs(&tokens, &mut i);
    // Optional visibility.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde_derive (vendored): generic types are not supported; derive on `{name}` by hand"
        );
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde_derive (vendored): `{name}` must have a braced body \
             (tuple structs unsupported), got {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => {
            let rename_all = container_attrs
                .iter()
                .find(|(k, _)| k == "rename_all")
                .and_then(|(_, v)| v.clone());
            Item::Enum {
                name,
                rename_all,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn rename(variant: &str, rule: Option<&str>) -> String {
    match rule {
        None => variant.to_string(),
        Some("lowercase") => variant.to_lowercase(),
        Some("UPPERCASE") => variant.to_uppercase(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in variant.chars().enumerate() {
                if c.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("camelCase") => {
            let mut chars = variant.chars();
            match chars.next() {
                Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        }
        Some(other) => panic!("serde_derive (vendored): unsupported rename_all rule `{other}`"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "obj.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut obj: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum {
            name,
            rename_all,
            variants,
        } => {
            let mut arms = String::new();
            for v in variants {
                let tag = rename(&v.name, rename_all.as_deref());
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(\"{tag}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(x0) => serde::Value::Object(vec![(\
                         \"{tag}\".to_string(), serde::Serialize::to_value(x0))]),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => serde::Value::Object(vec![(\
                             \"{tag}\".to_string(), serde::Value::Array(vec![{elems}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Object(vec![(\
                             \"{tag}\".to_string(), serde::Value::Object(vec![{pairs}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            pairs = pairs.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Expression that rebuilds one named field from `obj` (an object's pairs).
fn field_expr(f: &Field, ty_name: &str) -> String {
    let n = &f.name;
    match &f.default {
        Some(None) => format!(
            "match serde::__get(obj, \"{n}\") {{\n\
                 Some(v) => serde::Deserialize::from_value(v)?,\n\
                 None => Default::default(),\n\
             }}"
        ),
        Some(Some(path)) => format!(
            "match serde::__get(obj, \"{n}\") {{\n\
                 Some(v) => serde::Deserialize::from_value(v)?,\n\
                 None => {path}(),\n\
             }}"
        ),
        None => format!(
            "match serde::__get(obj, \"{n}\") {{\n\
                 Some(v) => serde::Deserialize::from_value(v)?,\n\
                 // Absent fields fall back to Null so `Option` fields read\n\
                 // as `None` (serde's behavior); everything else errors.\n\
                 None => serde::Deserialize::from_value(&serde::Value::Null)\n\
                     .map_err(|_| serde::DeError::missing_field(\"{n}\", \"{ty_name}\"))?,\n\
             }}"
        ),
    }
}

fn gen_struct_body(name: &str, path: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{n}: {e}", n = f.name, e = field_expr(f, name)))
        .collect();
    format!("{path} {{ {} }}", inits.join(",\n"))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = gen_struct_body(name, name, fields);
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| serde::DeError::custom(\
                             format!(\"expected object for struct {name}, got {{v:?}}\")))?;\n\
                         Ok({body})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum {
            name,
            rename_all,
            variants,
        } => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let tag = rename(&v.name, rename_all.as_deref());
                match &v.shape {
                    VariantShape::Unit => {
                        str_arms.push_str(&format!("\"{tag}\" => Ok({name}::{v}),\n", v = v.name))
                    }
                    VariantShape::Tuple(1) => obj_arms.push_str(&format!(
                        "\"{tag}\" => Ok({name}::{v}(serde::Deserialize::from_value(inner)?)),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        obj_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                                 let items = inner.as_array().ok_or_else(|| \
                                     serde::DeError::custom(\"expected array for variant {tag}\"))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(serde::DeError::custom(\
                                         \"wrong arity for variant {tag}\"));\n\
                                 }}\n\
                                 Ok({name}::{v}({elems}))\n\
                             }}\n",
                            v = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let body =
                            gen_struct_body(name, &format!("{name}::{v}", v = v.name), fields);
                        obj_arms.push_str(&format!(
                            "\"{tag}\" => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| \
                                     serde::DeError::custom(\"expected object for variant {tag}\"))?;\n\
                                 Ok({body})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> ::core::result::Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {str_arms}\
                                 other => Err(serde::DeError::custom(format!(\
                                     \"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, inner) = &pairs[0];\n\
                                 match tag.as_str() {{\n\
                                     {obj_arms}\
                                     other => Err(serde::DeError::custom(format!(\
                                         \"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::DeError::custom(format!(\
                                 \"expected externally tagged {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
