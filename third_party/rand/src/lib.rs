//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `random`/`random_range`/`random_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *determinism under a fixed seed*, never on a
//! specific stream. There is deliberately no `thread_rng`/OS entropy:
//! all randomness in mtm must flow from an explicit seed so simulator
//! runs stay reproducible (see `mtm-check determinism`).

/// A source of random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: fixed-size byte seed + `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 (upstream-compatible
    /// seeding *scheme*, not stream).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range, like
    /// upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by widening multiply (Lemire); unbiased
/// enough for simulation purposes and branch-free.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f32 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its natural domain (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(w);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (subset: `shuffle`).

    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&x));
            let k = rng.random_range(0..17usize);
            assert!(k < 17);
            let n = rng.random_range(5..=5i64);
            assert_eq!(n, 5);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
