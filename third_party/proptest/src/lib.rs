//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the mtm test suites use:
//! the [`proptest!`] macro with `pattern in strategy` bindings and an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! range/tuple/`any`/`prop::collection::vec` strategies, `.prop_map`,
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline vendored shim:
//! inputs are drawn from a fixed-seed [`rand::rngs::StdRng`] stream (so
//! failures reproduce across runs without a regression file), and there
//! is **no shrinking** — a failing case reports the drawn inputs via the
//! assertion message (`prop_assert!` panics like `assert!`). Each test
//! also honours the `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Draw a dependent second stage from the first stage's value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing `pred` (retries up to 100 times,
    /// then panics — keep filters loose).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Boxed, type-erased strategy (cloneable so `prop_oneof!` arms can be
/// collected into one vector).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn ErasedStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..100 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 100 candidates in a row: {}",
            self.whence
        );
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// Ranges are strategies.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// Tuples of strategies are strategies.
macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// Types with a canonical whole-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw uniformly from the type's whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random()
            }
        }
    )*};
}

arb_via_random!(bool, u32, u64, usize, i64, f64);

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> u8 {
        use rand::Rng;
        rng.random_range(0..=u8::MAX)
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> i32 {
        use rand::Rng;
        rng.random_range(i32::MIN as i64..=i32::MAX as i64) as i32
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// The `prop` facade module (`prop::collection::vec`, ...).
pub mod prop {
    pub use super::collection;
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Runtime plumbing used by the macros.

    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Cases to run: `PROPTEST_CASES` env var overrides the block config.
    pub fn cases(config: &super::ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases)
    }

    /// Per-test deterministic seed: fixed base hashed with the test name,
    /// so adding a test never perturbs another test's input stream.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Define property tests: each `#[test] fn name(bindings) { body }` inside
/// runs `cases` times with inputs drawn from the named strategies.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (@tests ($config:expr) ) => {};
    // One test fn; `#[test]` itself rides along in the meta repetition.
    (@tests ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let n = $crate::__rt::cases(&config);
            let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..n {
                $(let $arg = ($strat).generate(&mut rng);)+
                let run = || -> () { $body };
                // Let the case index surface in panic messages via a
                // wrapper panic note when the body itself panics.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{n} of `{}` failed (vendored runner: \
                         inputs are deterministic per test name; no shrinking)",
                        stringify!($name),
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    // No config header: everything is test fns.
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property test (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// See [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        use rand::Rng;
        let k = rng.random_range(0..self.0.len());
        self.0[k].generate(rng)
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, -5i64..5), x in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![
            (0u32..5).prop_map(|x| x * 2).boxed(),
            Just(99u32).boxed(),
        ]) {
            prop_assert!(v == 99 || v < 10);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::Strategy;
        let s = 0.0f64..1.0;
        let mut r1 =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(crate::__rt::seed_for("a::b"));
        let mut r2 =
            <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(crate::__rt::seed_for("a::b"));
        for _ in 0..32 {
            assert_eq!(s.generate(&mut r1).to_bits(), s.generate(&mut r2).to_bits());
        }
    }
}
